package netlink

import (
	"errors"
	"sync"
)

// MaxSplit bounds the sub-connection count of Split (the tag is one byte,
// but small counts keep the ingress buffers honest).
const MaxSplit = 64

var errSplitCount = errors.New("netlink: split count must be in [1, MaxSplit]")

// Split multiplexes one PacketConn into n independent sub-connections by
// a one-byte tag prefix. Both endpoints of a link must split with the
// same n; sub-connection i of one side talks to sub-connection i of the
// other.
//
// A single pump goroutine owns the underlying Recv; packets with an
// out-of-range tag are dropped like line noise. Closing any
// sub-connection closes the pump and the underlying conn (they share a
// lifetime, exactly like the two ends of a Pipe).
func Split(conn PacketConn, n int) ([]PacketConn, error) {
	if n < 1 || n > MaxSplit {
		return nil, errSplitCount
	}
	d := &splitter{
		conn: conn,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		// Per-sub-conn ingress buffer; overflow is dropped, which the
		// protocol running above tolerates as loss.
		d.boxes = append(d.boxes, make(chan []byte, 64))
	}
	go d.pump()
	subs := make([]PacketConn, n)
	for i := range subs {
		subs[i] = &splitConn{d: d, tag: byte(i)}
	}
	return subs, nil
}

// splitter owns the shared pump of a Split.
type splitter struct {
	conn  PacketConn
	boxes []chan []byte
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once
}

func (d *splitter) pump() {
	defer close(d.done)
	for {
		p, err := d.conn.Recv()
		if err != nil {
			return
		}
		if len(p) == 0 || int(p[0]) >= len(d.boxes) {
			continue
		}
		select {
		case d.boxes[p[0]] <- p[1:]:
		default:
		}
	}
}

func (d *splitter) close() {
	d.once.Do(func() {
		close(d.stop)
		d.conn.Close()
		<-d.done
	})
}

// splitConn is one tagged sub-connection.
type splitConn struct {
	d   *splitter
	tag byte
}

var _ PacketConn = (*splitConn)(nil)

// Send implements PacketConn.
func (s *splitConn) Send(p []byte) error {
	tagged := make([]byte, 1+len(p))
	tagged[0] = s.tag
	copy(tagged[1:], p)
	return s.d.conn.Send(tagged)
}

// Recv implements PacketConn.
func (s *splitConn) Recv() ([]byte, error) {
	select {
	case p := <-s.d.boxes[s.tag]:
		return p, nil
	case <-s.d.stop:
		return nil, ErrClosed
	}
}

// Close implements PacketConn; sub-connections share the pump's lifetime.
func (s *splitConn) Close() error {
	s.d.close()
	return nil
}
