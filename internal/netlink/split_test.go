package netlink

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"ghm/internal/metrics"
)

func TestSplitValidation(t *testing.T) {
	a, _ := Pipe(PipeConfig{Seed: 61})
	defer a.Close()
	for _, n := range []int{0, -1, MaxSplit + 1} {
		if _, err := Split(a, n); err == nil {
			t.Errorf("Split(%d) accepted", n)
		}
	}
}

func TestSplitRoutesByTag(t *testing.T) {
	a, b := Pipe(PipeConfig{Seed: 62})
	subsA, err := Split(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	subsB, err := Split(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer subsA[0].Close()
	defer subsB[0].Close()

	for i := 0; i < 3; i++ {
		msg := []byte(fmt.Sprintf("lane-%d", i))
		if err := subsA[i].Send(msg); err != nil {
			t.Fatal(err)
		}
		got, err := subsB[i].Recv()
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("lane %d: %q, %v", i, got, err)
		}
	}
}

func TestSplitCrossLaneIsolation(t *testing.T) {
	a, b := Pipe(PipeConfig{Seed: 63})
	subsA, _ := Split(a, 2)
	subsB, _ := Split(b, 2)
	defer subsA[0].Close()
	defer subsB[0].Close()

	if err := subsA[0].Send([]byte("for-lane-0")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		subsB[1].Recv() // wrong lane: must not see the packet
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("packet leaked across lanes")
	case <-time.After(20 * time.Millisecond):
	}
	if got, err := subsB[0].Recv(); err != nil || !bytes.Equal(got, []byte("for-lane-0")) {
		t.Fatalf("right lane: %q, %v", got, err)
	}
	subsB[0].Close()
	<-done
}

func TestSplitDropsUnknownTags(t *testing.T) {
	a, b := Pipe(PipeConfig{Seed: 64})
	subsB, _ := Split(b, 2)
	defer a.Close()
	defer subsB[0].Close()

	// Raw garbage with an out-of-range tag, then a valid packet.
	if err := a.Send([]byte{9, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte{}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(append([]byte{1}, []byte("good")...)); err != nil {
		t.Fatal(err)
	}
	got, err := subsB[1].Recv()
	if err != nil || !bytes.Equal(got, []byte("good")) {
		t.Fatalf("Recv = %q, %v", got, err)
	}
}

func TestSplitCloseCascades(t *testing.T) {
	a, _ := Pipe(PipeConfig{Seed: 65})
	subs, _ := Split(a, 2)
	errc := make(chan error, 1)
	go func() {
		_, err := subs[1].Recv()
		errc <- err
	}()
	time.Sleep(2 * time.Millisecond)
	subs[0].Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Recv after sibling close = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("sibling Recv did not unblock")
	}
}

func TestSplitCountsDemuxDrops(t *testing.T) {
	a, b := Pipe(PipeConfig{Seed: 66})
	defer a.Close()
	reg := metrics.New()
	subsB, err := SplitMetrics(b, 2, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer subsB[0].Close()

	// An out-of-range tag, an empty (unparsable) frame, then a valid
	// packet: the garbage must be counted, not silently swallowed.
	if err := a.Send([]byte{9, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte{}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(append([]byte{1}, []byte("good")...)); err != nil {
		t.Fatal(err)
	}
	if got, err := subsB[1].Recv(); err != nil || !bytes.Equal(got, []byte("good")) {
		t.Fatalf("Recv = %q, %v", got, err)
	}
	waitCounter(t, reg, "link.demux_dropped", 2)
}

func TestSplitCountsOverflowDrops(t *testing.T) {
	a, b := Pipe(PipeConfig{Seed: 67})
	defer a.Close()
	reg := metrics.New()
	subsB, err := SplitMetrics(b, 2, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer subsB[0].Close()

	// Nothing reads lane 0, so its ingress mailbox (engine default 64)
	// fills and the excess is shed as counted link loss.
	const n = 80
	for i := 0; i < n; i++ {
		if err := a.Send(append([]byte{0}, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitCounter(t, reg, "link.overflow_dropped", 1)
	snap := reg.Snapshot()
	if g := snap.Gauges["link.ep0.overflow_dropped"]; g < 1 {
		t.Fatalf("per-endpoint overflow gauge = %v, want >= 1", g)
	}
	if g := snap.Gauges["link.ep1.overflow_dropped"]; g != 0 {
		t.Fatalf("idle endpoint overflow gauge = %v, want 0", g)
	}
}
