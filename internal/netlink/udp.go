package netlink

import (
	"errors"
	"fmt"
	"net"
)

// maxUDPPacket bounds received datagrams. Protocol packets are a few
// hundred bytes plus the message body; 64 KiB is UDP's own ceiling.
const maxUDPPacket = 64 * 1024

// UDPConn adapts a UDP socket to PacketConn. UDP is exactly the channel
// the paper models: datagrams may be lost, duplicated and reordered, but
// the checksum makes corruption appear as loss, preserving causality.
type UDPConn struct {
	conn *net.UDPConn
	peer *net.UDPAddr
}

var _ PacketConn = (*UDPConn)(nil)

// DialUDP binds laddr and sends to raddr. Either station of a link can be
// brought up first; packets sent before the peer listens are simply lost,
// which the protocol tolerates.
func DialUDP(laddr, raddr string) (*UDPConn, error) {
	local, err := net.ResolveUDPAddr("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("netlink: resolve local %q: %w", laddr, err)
	}
	remote, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, fmt.Errorf("netlink: resolve remote %q: %w", raddr, err)
	}
	conn, err := net.ListenUDP("udp", local)
	if err != nil {
		return nil, fmt.Errorf("netlink: listen %q: %w", laddr, err)
	}
	return &UDPConn{conn: conn, peer: remote}, nil
}

// NewUDPConn wraps an already-bound socket talking to peer. It exists for
// callers that need to bind both stations before either knows the other's
// ephemeral port.
func NewUDPConn(conn *net.UDPConn, peer *net.UDPAddr) *UDPConn {
	return &UDPConn{conn: conn, peer: peer}
}

// LocalAddr returns the bound address (useful when laddr used port 0).
func (u *UDPConn) LocalAddr() net.Addr { return u.conn.LocalAddr() }

// Send implements PacketConn.
func (u *UDPConn) Send(p []byte) error {
	if _, err := u.conn.WriteToUDP(p, u.peer); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		// Transient network errors are indistinguishable from loss; the
		// protocol retries anyway.
		return nil
	}
	return nil
}

// Recv implements PacketConn. Datagrams from addresses other than the
// peer are dropped: the data link is a two-station system. Transient read
// errors (e.g. ICMP-induced ECONNREFUSED while the peer host is down —
// exactly the crash scenario the protocol exists for) are returned
// unwrapped-as-closed: the engine pump classifies them via IsFatal,
// counts an io_retry and paces the retry on the shared timer wheel, so
// this goroutine never sleeps. Only a closed socket returns ErrClosed.
func (u *UDPConn) Recv() ([]byte, error) {
	buf := make([]byte, maxUDPPacket)
	for {
		n, from, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil, ErrClosed
			}
			return nil, fmt.Errorf("netlink: udp read: %w", err)
		}
		if from == nil || !from.IP.Equal(u.peer.IP) && !u.peer.IP.IsUnspecified() {
			continue
		}
		return append([]byte(nil), buf[:n]...), nil
	}
}

// Close implements PacketConn.
func (u *UDPConn) Close() error { return u.conn.Close() }
