package netlink

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ghm/internal/bitstr"
	"ghm/internal/metrics"
	"ghm/internal/trace"
	"ghm/internal/wire"
)

// scriptConn is a hand-driven PacketConn: the test feeds packets to Recv
// through in, captures the station's output from sent, and controls when
// Recv observes the close — Close here does NOT unblock Recv, so the
// receive loop provably outlives Sender.Close's stop signal, which is
// exactly the window the stale-waiter bug lived in.
type scriptConn struct {
	sent    chan []byte
	in      chan []byte
	release chan struct{}
	once    sync.Once
}

func newScriptConn() *scriptConn {
	return &scriptConn{
		sent:    make(chan []byte, 64),
		in:      make(chan []byte),
		release: make(chan struct{}),
	}
}

func (c *scriptConn) Send(p []byte) error {
	cp := append([]byte(nil), p...)
	select {
	case c.sent <- cp:
	default:
	}
	return nil
}

func (c *scriptConn) Recv() ([]byte, error) {
	select {
	case p := <-c.in:
		return p, nil
	case <-c.release:
		return nil, ErrClosed
	}
}

func (c *scriptConn) Close() error { return nil }

// waitCounter polls reg until the named counter reaches at least want.
func waitCounter(t *testing.T, reg *metrics.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter(name).Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter %s never reached %d", name, want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// feed hands one packet to the station's receive loop and returns once it
// was picked up.
func (c *scriptConn) feed(t *testing.T, p []byte) {
	t.Helper()
	select {
	case c.in <- p:
	case <-time.After(5 * time.Second):
		t.Fatal("receive loop never picked up the packet")
	}
}

// TestCloseAbandonsPendingTransfer is the regression test for the
// abandoned-transfer bookkeeping bug: Send's Close path used to return
// ErrClosed while leaving the waiter set and the transmitter un-crashed,
// so a stale OK arriving afterwards matched the abandoned transfer — the
// tap saw an OK for a message the caller was told did not complete, and
// no crash^T accounted for the abandonment. After the fix the abandoned
// transfer is wiped as crash^T and the stale ack is ignored.
func TestCloseAbandonsPendingTransfer(t *testing.T) {
	conn := newScriptConn()
	reg := metrics.New()
	var mu sync.Mutex
	var events []trace.Kind
	s, err := NewSender(conn, SenderConfig{
		Tap: func(e trace.Event) {
			mu.Lock()
			events = append(events, e.Kind)
			mu.Unlock()
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 1. Start a Send. The transmitter knows no challenge yet, so no DATA
	// leaves; the waiter parks.
	errc := make(chan error, 1)
	go func() { errc <- s.Send(context.Background(), []byte("abandoned")) }()
	waitCounter(t, reg, "tx.send_msgs", 1) // the transfer is committed

	// 2. Feed a receiver challenge; the transmitter answers with DATA,
	// revealing the transfer's tag.
	rho := bitstr.MustBinary("10110011")
	conn.feed(t, wire.Ctl{Rho: rho, Tau: bitstr.Empty(), I: 1}.Encode())
	var tau bitstr.Str
	select {
	case p := <-conn.sent:
		d, err := wire.DecodeData(p)
		if err != nil {
			t.Fatalf("station emitted junk: %v", err)
		}
		tau = d.Tau
	case <-time.After(5 * time.Second):
		t.Fatal("no DATA packet for the challenge")
	}

	// 3. Close the sender. Close blocks until the receive loop exits, and
	// our conn keeps that loop alive, so run it from a goroutine; the
	// pending Send must fail with ErrClosed first.
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Send = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send did not fail on Close")
	}

	// 4. A perfectly valid — but now stale — OK for the abandoned
	// transfer arrives while the receive loop is still running.
	conn.feed(t, wire.Ctl{Rho: bitstr.MustBinary("01011100"), Tau: tau, I: 2}.Encode())

	// 5. Let the receive loop observe the close and Close return.
	close(conn.release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned")
	}

	mu.Lock()
	defer mu.Unlock()
	var okCount, crashCount int
	for _, k := range events {
		switch k {
		case trace.KindOK:
			okCount++
		case trace.KindCrashT:
			crashCount++
		}
	}
	if okCount != 0 {
		t.Errorf("stale OK matched an abandoned transfer (%d OK events): %v", okCount, events)
	}
	if crashCount != 1 {
		t.Errorf("abandoned transfer not accounted as crash^T (%d crash events): %v", crashCount, events)
	}
	snap := reg.Snapshot()
	if snap.Counters["tx.abandoned"] != 1 || snap.Counters["tx.crashes"] != 1 {
		t.Errorf("abandonment counters wrong: abandoned=%d crashes=%d",
			snap.Counters["tx.abandoned"], snap.Counters["tx.crashes"])
	}
	if snap.Counters["tx.oks"] != 0 {
		t.Errorf("tx.oks = %d for a run with no completed transfer", snap.Counters["tx.oks"])
	}
}

// TestCancelVsOKDeliveredWins is the regression test for the
// delivered-but-reported-failed Send race: when the OK resolves the
// waiter concurrently with a context cancellation, the select could take
// the cancellation arm and discard the buffered nil — Send returned
// ctx.Err() for a transfer the protocol had confirmed delivered. After
// the fix, settle drains the raced resolution and Send reports success.
//
// The script pins the interleaving: the OK is committed (tx.oks
// observed) before cancel fires, so the old code failed whenever the
// select preferred the ready ctx.Done arm — roughly half of these
// iterations, and deterministically when cancel lands in the gap between
// the waiter being cleared and the buffered send.
func TestCancelVsOKDeliveredWins(t *testing.T) {
	for i := 0; i < 50; i++ {
		conn := newScriptConn()
		reg := metrics.New()
		var mu sync.Mutex
		var events []trace.Kind
		s, err := NewSender(conn, SenderConfig{
			Tap: func(e trace.Event) {
				mu.Lock()
				events = append(events, e.Kind)
				mu.Unlock()
			},
			Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}

		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() { errc <- s.Send(ctx, []byte("racer")) }()
		waitCounter(t, reg, "tx.send_msgs", 1)

		// Challenge in, DATA out: the transfer's tag is on the wire.
		rho := bitstr.MustBinary("10110011")
		conn.feed(t, wire.Ctl{Rho: rho, Tau: bitstr.Empty(), I: 1}.Encode())
		var tau bitstr.Str
		select {
		case p := <-conn.sent:
			d, err := wire.DecodeData(p)
			if err != nil {
				t.Fatalf("station emitted junk: %v", err)
			}
			tau = d.Tau
		case <-time.After(5 * time.Second):
			t.Fatal("no DATA packet for the challenge")
		}

		// A valid ack: the OK commits (counter flushed under the station
		// lock, so once tx.oks reads 1 the waiter has been claimed by the
		// handler) — and only then does the cancellation land.
		conn.feed(t, wire.Ctl{Rho: bitstr.MustBinary("01011100"), Tau: tau, I: 2}.Encode())
		waitCounter(t, reg, "tx.oks", 1)
		cancel()

		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("iter %d: Send = %v for a transfer whose OK committed first — delivered but reported failed", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("iter %d: Send never resolved", i)
		}

		mu.Lock()
		var okCount, crashCount int
		for _, k := range events {
			switch k {
			case trace.KindOK:
				okCount++
			case trace.KindCrashT:
				crashCount++
			}
		}
		mu.Unlock()
		if okCount != 1 || crashCount != 0 {
			t.Fatalf("iter %d: tape has %d OKs, %d crashes; want exactly one OK and no crash", i, okCount, crashCount)
		}
		snap := reg.Snapshot()
		if snap.Counters["tx.abandoned"] != 0 {
			t.Fatalf("iter %d: delivered transfer counted abandoned", i)
		}
		// The drained late-OK must be observed by the latency histogram
		// (the handler fast path and the settle path both land in finish).
		if h, ok := snap.Histograms["tx.ok_latency_ms"]; !ok || h.Count != 1 {
			t.Fatalf("iter %d: ok_latency histogram count = %+v, want 1 observation", i, snap.Histograms["tx.ok_latency_ms"])
		}
		close(conn.release)
		s.Close()
	}
}

// raceSession builds a Sender/Receiver pair on a perfect pipe with a tap
// recording the sender's events.
func raceSession(t *testing.T, seed int64, events *[]trace.Kind, mu *sync.Mutex) (*Sender, *Receiver) {
	t.Helper()
	a, b := Pipe(PipeConfig{Seed: seed})
	s, err := NewSender(a, SenderConfig{
		Tap: func(e trace.Event) {
			mu.Lock()
			*events = append(*events, e.Kind)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(b, ReceiverConfig{RetryInterval: 50 * time.Microsecond})
	if err != nil {
		s.Close()
		t.Fatal(err)
	}
	return s, r
}

// TestCrashVsOKInterleaving drives Crash head-to-head against the OK from
// the receive loop, many times, under -race: the waiter must resolve
// exactly once, with either nil or ErrCrashed, and never wedge.
func TestCrashVsOKInterleaving(t *testing.T) {
	ctx := testCtx(t)
	for i := 0; i < 150; i++ {
		var mu sync.Mutex
		var events []trace.Kind
		s, r := raceSession(t, int64(1000+i), &events, &mu)

		errc := make(chan error, 1)
		go func() { errc <- s.Send(ctx, []byte("racer")) }()
		// Vary the crash point across iterations to sweep the interleaving
		// space around the OK commit.
		time.Sleep(time.Duration(i%40) * 10 * time.Microsecond)
		s.Crash()

		select {
		case err := <-errc:
			if err != nil && !errors.Is(err, ErrCrashed) {
				t.Fatalf("iter %d: Send = %v, want nil or ErrCrashed", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("iter %d: Send never resolved — waiter lost", i)
		}
		// A second transfer must work regardless of which side won.
		if err := s.Send(ctx, []byte("after")); err != nil {
			t.Fatalf("iter %d: Send after crash = %v", i, err)
		}
		drainCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		for delivered := 0; delivered < 1; delivered++ {
			if _, err := r.Recv(drainCtx); err != nil {
				t.Fatalf("iter %d: Recv = %v", i, err)
			}
		}
		cancel()
		s.Close()
		r.Close()
	}
}

// TestCloseVsOKInterleaving drives Close head-to-head against the OK. For
// each interleaving the outcome must be coherent: either the OK won (Send
// nil, tap shows OK, no crash^T) or the abandonment won (Send ErrClosed —
// possibly with the OK having raced past the stop signal — and, when the
// transfer really was pending, crash^T taped). What may never happen is an
// OK and a crash^T for the same transfer.
func TestCloseVsOKInterleaving(t *testing.T) {
	ctx := testCtx(t)
	for i := 0; i < 150; i++ {
		var mu sync.Mutex
		var events []trace.Kind
		s, r := raceSession(t, int64(5000+i), &events, &mu)

		errc := make(chan error, 1)
		go func() { errc <- s.Send(ctx, []byte("racer")) }()
		time.Sleep(time.Duration(i%40) * 10 * time.Microsecond)
		s.Close()

		var sendErr error
		select {
		case sendErr = <-errc:
		case <-time.After(10 * time.Second):
			t.Fatalf("iter %d: Send never resolved — waiter lost", i)
		}
		if sendErr != nil && !errors.Is(sendErr, ErrClosed) {
			t.Fatalf("iter %d: Send = %v, want nil or ErrClosed", i, sendErr)
		}

		mu.Lock()
		var okCount, crashCount int
		for _, k := range events {
			switch k {
			case trace.KindOK:
				okCount++
			case trace.KindCrashT:
				crashCount++
			}
		}
		mu.Unlock()
		if okCount > 0 && crashCount > 0 {
			t.Fatalf("iter %d: transfer both completed (OK) and was abandoned (crash^T)", i)
		}
		if sendErr == nil && okCount != 1 {
			t.Fatalf("iter %d: Send succeeded but tap saw %d OKs", i, okCount)
		}
		r.Close()
	}
}
