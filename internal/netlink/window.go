package netlink

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ghm/internal/core"
	"ghm/internal/engine"
	"ghm/internal/metrics"
	"ghm/internal/trace"
)

// This file runs the k-deep sliding-window state machines of
// internal/core over a PacketConn: up to k Sends in flight per station
// (the stop-and-wait protocol admits one), released to the receiving
// application in admission order.
//
// Three pieces of runtime memory sit above the protocol machines, and —
// like the mux resequencer — survive protocol crashes (a crash erases a
// station's *protocol* state; the process hosting it keeps running):
//
//   - an admission sequence number, uvarint-framed into each payload
//     together with the sender incarnation's epoch, by which the receiver
//     releases deliveries in order (and detects a rebuilt sender whose
//     seqs restart — see WindowedSenderConfig.Epoch);
//   - the receiver's release cursor + pending set, which double as the
//     resubmission dedup: a crash^T wipes the whole window at once
//     (shared crash model), the wiped payloads are resubmitted by the
//     layer above, and an attempt that had already delivered before the
//     wipe is dropped by its reused seq instead of delivering twice;
//   - the sender's wiped map (payload bytes -> multiset of seqs), which
//     makes that reuse happen: a resubmitted payload identical to a wiped
//     one takes one of the wiped attempts' seqs. A multiset, not a single
//     seq: two byte-identical payloads can be in flight on different
//     slots when a crash lands, and each wiped attempt's seq must survive
//     to be reclaimed or the release cursor stalls on the lost one.
//
// The stream contract this buys: every payload admitted before a wipe
// must be resubmitted (byte-identical) for the stream to keep releasing
// — an abandoned hole stalls release at its seq forever, exactly as an
// abandoned mux lane transfer stalls the mux resequencer. ghm.Session
// provides that resubmission automatically.

// frameSeq prefixes msg with the sender incarnation's epoch and the
// payload's admission seq.
func frameSeq(epoch, seq uint64, msg []byte) []byte {
	out := binary.AppendUvarint(make([]byte, 0, len(msg)+2*binary.MaxVarintLen64), epoch)
	out = binary.AppendUvarint(out, seq)
	return append(out, msg...)
}

// unframeSeq splits an epoch+seq-framed payload.
func unframeSeq(p []byte) (epoch, seq uint64, msg []byte, ok bool) {
	epoch, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, nil, false
	}
	seq, m := binary.Uvarint(p[n:])
	if m <= 0 {
		return 0, 0, nil, false
	}
	return epoch, seq, p[n+m:], true
}

// WindowedSenderConfig parameterizes a WindowedSender.
type WindowedSenderConfig struct {
	// Window is the depth k: how many Sends may be in flight at once
	// (default 1, max core.MaxWindow).
	Window int
	// Params configures each slot's protocol transmitter.
	Params core.Params
	// Tap observes the station's externally visible actions; windowed
	// events carry the slot index. Same contract as SenderConfig.Tap.
	Tap func(trace.Event)
	// Metrics receives the tx.* family plus the tx.window_* counters.
	Metrics *metrics.Registry
	// Epoch distinguishes successive sender incarnations talking to one
	// long-lived receiver: the receiver adopts the highest epoch it sees
	// and resets its release cursor for it, so a rebuilt sender (whose
	// admission seqs restart at zero) is not mistaken for a replay of the
	// old one. Supervised sessions pass their incarnation number; a
	// single-incarnation pair leaves it 0. Raising the epoch abandons the
	// previous incarnation's in-order dedup, so delivery across a rebuild
	// is at-least-once — the session's documented contract.
	Epoch uint64
}

// WindowedSender runs a k-deep window of protocol transmitters over a
// PacketConn. Up to k Send calls proceed concurrently, each owning one
// slot; Send returns nil only after that slot's protocol OK. One station,
// one tap stream, one crash model: cancelling any in-flight Send (or
// Crash/Close) wipes the whole window, because the model's only
// abandonment action is crash^T and a crash erases the entire station.
type WindowedSender struct {
	io    stationIO
	tap   func(trace.Event)
	m     windowSenderMetrics
	k     int
	epoch uint64

	mu      sync.Mutex // guards everything below
	wt      *core.WindowedTransmitter
	waiters []chan error // per slot; non-nil while a Send awaits its OK
	slotMsg [][]byte     // per slot: raw payload in flight (nil when idle)
	slotSeq []uint64     // per slot: admission seq of the in-flight payload
	nextSeq uint64
	wiped   map[string][]uint64 // payload bytes -> wiped seqs, for resubmission reuse
	last    core.TxStats        // stats at the previous flush (delta baseline)

	free chan int // slot tokens; admission waits here, bounding in-flight at k

	stop      chan struct{}
	closeOnce sync.Once
}

// NewWindowedSender builds the window and attaches it to conn's engine.
func NewWindowedSender(conn PacketConn, cfg WindowedSenderConfig) (*WindowedSender, error) {
	if cfg.Window == 0 {
		cfg.Window = 1
	}
	wt, err := core.NewWindowedTransmitter(cfg.Window, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("netlink: windowed sender: %w", err)
	}
	s := &WindowedSender{
		tap:     cfg.Tap,
		m:       newWindowSenderMetrics(cfg.Metrics),
		k:       cfg.Window,
		epoch:   cfg.Epoch,
		wt:      wt,
		waiters: make([]chan error, cfg.Window),
		slotMsg: make([][]byte, cfg.Window),
		slotSeq: make([]uint64, cfg.Window),
		wiped:   make(map[string][]uint64),
		free:    make(chan int, cfg.Window),
		stop:    make(chan struct{}),
	}
	for i := 0; i < cfg.Window; i++ {
		s.free <- i
	}
	s.io = stationEndpoint(conn, cfg.Metrics)
	s.io.ep.SetHandler(s.handlePacket)
	return s, nil
}

// Window returns the depth k.
func (s *WindowedSender) Window() int { return s.k }

// emit reports one externally visible action; callers hold s.mu so taps
// observe actions in commit order.
func (s *WindowedSender) emit(e trace.Event) {
	if s.tap != nil {
		s.tap(e)
	}
}

// flushStats publishes the window's per-incarnation protocol counters as
// deltas; call with s.mu held and always immediately before wt.Crash().
func (s *WindowedSender) flushStats() {
	st := s.wt.Stats()
	s.m.packetsSent.Add(int64(st.PacketsSent - s.last.PacketsSent))
	s.m.oks.Add(int64(st.OKs - s.last.OKs))
	s.m.errorsCounted.Add(int64(st.ErrorsCounted - s.last.ErrorsCounted))
	s.m.tagExtensions.Add(int64(st.Extensions - s.last.Extensions))
	s.m.replayRejections.Add(int64(st.Ignored - s.last.Ignored))
	s.last = st
}

// crashLocked performs the window's shared crash^T: stats flushed, every
// slot's memory wiped at once, every in-flight payload recorded for seq
// reuse, every still-parked waiter resolved with ErrCrashed. Call with
// s.mu held. The waiter sends cannot block: each channel is buffered
// (cap 1) and exclusively owned by whoever cleared it here.
func (s *WindowedSender) crashLocked() {
	s.flushStats()
	for i := range s.slotMsg {
		if s.slotMsg[i] != nil {
			// Append, never assign: byte-identical payloads on different
			// slots each contribute their own seq to the multiset.
			key := string(s.slotMsg[i])
			s.wiped[key] = append(s.wiped[key], s.slotSeq[i])
			s.slotMsg[i] = nil
			s.m.windowWiped.Inc()
		}
		if w := s.waiters[i]; w != nil {
			s.waiters[i] = nil
			s.m.abandoned.Inc()
			w <- ErrCrashed
		}
	}
	s.wt.Crash()
	s.last = core.TxStats{}
	s.m.crashes.Inc()
	s.m.windowInflight.Set(0)
	s.emit(trace.Event{Kind: trace.KindCrashT})
}

// settle resolves an interrupted Send for slot. If the transfer is still
// pending the station crashes itself — wiping the whole window, shared
// crash model — and settle reports nothing to drain. If the OK (or a
// concurrent crash) raced ahead and already cleared the waiter, the
// buffered result is guaranteed to arrive promptly; settle drains it and
// hands it back so a delivered transfer is never reported failed.
func (s *WindowedSender) settle(slot int, w chan error) (error, bool) {
	s.mu.Lock()
	if s.waiters[slot] == w {
		s.waiters[slot] = nil
		s.m.abandoned.Inc()
		s.crashLocked()
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Unlock()
	// Whoever cleared the waiter owns the buffered channel and sends the
	// result before touching the conn (see handlePacket), so this receive
	// is bounded by lock handoff, not by conn-write latency.
	return <-w, true
}

// finish translates a waiter result into Send's return, observing the
// confirm latency for delivered transfers — including late OKs drained
// by settle after a lost cancellation race.
func (s *WindowedSender) finish(start time.Time, err error) error {
	if err == nil {
		// Elapsed on the station's own clock: ObserveSince would re-read
		// the wall clock, which is wrong under virtual time.
		s.m.okLatencyMS.Observe(float64(s.io.clock().Now().Sub(start)) / float64(time.Millisecond))
		return nil
	}
	return err
}

// Send transfers msg and blocks until the protocol confirms delivery
// (OK), the context ends, or the sender is closed or crashed. Up to k
// calls proceed concurrently; each waits for a free window slot first.
// Cancelling one in-flight Send crashes the whole station (the model
// offers no narrower abandonment), so concurrent Sends fail with
// ErrCrashed and their payloads must be resubmitted byte-identical to
// keep the receiver's in-order release moving (ghm.Session does this
// automatically).
func (s *WindowedSender) Send(ctx context.Context, msg []byte) error {
	var slot int
	select {
	case slot = <-s.free:
	case <-ctx.Done():
		return ctx.Err()
	case <-s.stop:
		return ErrClosed
	case <-s.io.ep.Closed():
		return ErrClosed
	case <-s.io.ep.Dead():
		return ErrClosed
	}
	// The token returns unconditionally: cap k and single ownership make
	// this send non-blocking.
	defer func() { s.free <- slot }()

	s.mu.Lock()
	var seq uint64
	var reused bool
	if seqs := s.wiped[string(msg)]; len(seqs) > 0 {
		// Pop the lowest wiped seq first: identical payloads are
		// interchangeable for correctness, but lowest-first lets a caller
		// resubmitting sequentially in admission order (the outbox's
		// pattern) see each release before issuing the next attempt,
		// instead of parking the early ones behind a seq still unsent.
		mi := 0
		for j, q := range seqs {
			if q < seqs[mi] {
				mi = j
			}
		}
		seq, reused = seqs[mi], true
		if len(seqs) == 1 {
			delete(s.wiped, string(msg))
		} else {
			s.wiped[string(msg)] = append(seqs[:mi], seqs[mi+1:]...)
		}
	} else {
		seq = s.nextSeq
		s.nextSeq++
	}
	out, err := s.wt.SendMsg(slot, frameSeq(s.epoch, seq, msg))
	if err != nil {
		// Unreachable while the token invariant holds (a held token means a
		// free slot); roll the seq back so a stray failure cannot poison the
		// stream with a hole.
		if reused {
			s.wiped[string(msg)] = append(s.wiped[string(msg)], seq)
		} else {
			s.nextSeq--
		}
		s.mu.Unlock()
		return fmt.Errorf("netlink: windowed send: %w", err)
	}
	s.m.sendMsgs.Inc()
	s.m.windowAdmitted.Inc()
	s.emit(trace.Event{Kind: trace.KindSendMsg, Msg: string(msg), Slot: slot})
	s.slotMsg[slot] = append([]byte(nil), msg...)
	s.slotSeq[slot] = seq
	w := make(chan error, 1)
	s.waiters[slot] = w
	s.m.windowInflight.Set(float64(s.wt.InFlight()))
	s.flushStats()
	s.mu.Unlock()

	start := s.io.clock().Now()
	s.transmit(out.Packets)

	select {
	case err := <-w:
		return s.finish(start, err)
	case <-ctx.Done():
		if res, ok := s.settle(slot, w); ok {
			return s.finish(start, res)
		}
		return ctx.Err()
	case <-s.stop:
		if res, ok := s.settle(slot, w); ok {
			return s.finish(start, res)
		}
		return ErrClosed
	case <-s.io.ep.Closed():
		if res, ok := s.settle(slot, w); ok {
			return s.finish(start, res)
		}
		return ErrClosed
	case <-s.io.ep.Dead():
		if res, ok := s.settle(slot, w); ok {
			return s.finish(start, res)
		}
		return ErrClosed
	}
}

// Crash simulates crash^T on the whole station: every slot's memory is
// erased at once and every pending Send fails with ErrCrashed.
func (s *WindowedSender) Crash() {
	s.mu.Lock()
	s.crashLocked()
	s.mu.Unlock()
}

// Stats returns the window's aggregated protocol counters.
func (s *WindowedSender) Stats() core.TxStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wt.Stats()
}

// Close detaches the station from its engine. Pending Sends fail with
// ErrClosed or ErrCrashed (the first to settle crashes the window; the
// rest observe that crash) and no waiter survives to be matched by a
// stale OK.
func (s *WindowedSender) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.io.close()
	})
	return nil
}

// handlePacket is the engine-pump callback: one protocol round for one
// slot. Replies leave in a single batched flush; waiter resolutions are
// buffered sends that cannot block the pump.
func (s *WindowedSender) handlePacket(p []byte) {
	s.mu.Lock()
	out := s.wt.ReceivePacket(p)
	s.m.packetsReceived.Inc()
	var resolved []chan error
	for _, slot := range out.OKs {
		s.emit(trace.Event{Kind: trace.KindOK, Slot: slot})
		s.slotMsg[slot] = nil
		if w := s.waiters[slot]; w != nil {
			s.waiters[slot] = nil
			resolved = append(resolved, w)
		}
	}
	if len(out.OKs) > 0 {
		s.m.windowInflight.Set(float64(s.wt.InFlight()))
	}
	s.flushStats()
	s.mu.Unlock()

	// Resolve before the conn write: settle's drain of a cleared waiter is
	// then bounded by lock handoff alone, never by how long a PacketConn
	// implementation blocks in Send. The replies tolerate the reordering —
	// they cross an unreliable link anyway.
	for _, w := range resolved {
		//lint:allow nonblockinghandler the waiter channel is buffered (cap 1) and exclusively owned: this send cannot block
		w <- nil
	}
	s.transmit(out.Packets)
}

// transmit flushes protocol packets in one batched conn call, treating
// transient errors as the loss the protocol tolerates.
//
//ghm:hotpath
func (s *WindowedSender) transmit(pkts [][]byte) {
	if len(pkts) == 0 {
		return
	}
	sendBatchTolerant(s.io.ep, pkts)
}

// WindowedReceiverConfig parameterizes a WindowedReceiver.
type WindowedReceiverConfig struct {
	// Window is the depth k (default 1, max core.MaxWindow). It should
	// match the sender's: a narrower receiver ignores the extra slots'
	// traffic and stalls them.
	Window int
	// Params configures each slot's protocol receiver.
	Params core.Params
	// RetryInterval paces the RETRY action across the whole window: one
	// wheel firing emits every slot's CTL in one batched flush (default
	// 2ms). RetryBackoffMax enables adaptive pacing as on Receiver.
	RetryInterval   time.Duration
	RetryBackoffMax time.Duration
	// Tap observes the station's actions; windowed events carry the slot.
	Tap func(trace.Event)
	// Metrics receives the rx.* family plus the rx.window_* counters.
	Metrics *metrics.Registry

	// Deliver/Accept: push mode, as on ReceiverConfig. Deliver receives
	// in-order released payloads (seq already stripped), possibly several
	// per accepted packet (up to WindowReleaseBound) when a release run
	// drains parked successors. Accept narrows the receiver's internal
	// capacity gate; it never widens it.
	Deliver func(msg []byte)
	Accept  func() bool
}

// WindowReleaseBound returns the largest in-order release burst one
// accepted packet can produce on a window-k receiver: the gap-filling
// delivery plus every consecutively parked successor the internal
// accept gate admits. A layer that pushes releases into its own bounded
// queue (see internal/mux) must keep that much room free per accepted
// packet.
func WindowReleaseBound(window int) int { return window * deliveryBuffer }

// WindowedReceiver runs a k-deep window of protocol receivers and hands
// released messages to Recv in the sender's admission order, exactly
// once (up to the protocol's epsilon): out-of-order slot completions are
// parked until the gap fills, and duplicates from crash-resubmission are
// dropped by their reused seq.
type WindowedReceiver struct {
	io  stationIO
	tap func(trace.Event)
	m   windowReceiverMetrics
	k   int

	mu      sync.Mutex // guards wr, last, closed, retry pacing, release state
	wr      *core.WindowedReceiver
	last    core.RxStats
	closed  bool
	epoch   uint64            // highest sender incarnation seen
	nextSeq uint64            // release cursor: next seq to hand over
	pending map[uint64][]byte // delivered, awaiting earlier seqs

	out     chan []byte
	deliver func([]byte)
	accept  func() bool

	arrivals atomic.Uint64
	parked   atomic.Int64 // len(pending) mirror, readable without mu by the accept gate

	retry            *engine.Timer
	interval         time.Duration
	base, maxBackoff time.Duration
	lastSeen         uint64

	stop      chan struct{}
	closeOnce sync.Once
}

// NewWindowedReceiver builds the window, attaches it to conn's engine
// and schedules the shared retry timer on the wheel.
func NewWindowedReceiver(conn PacketConn, cfg WindowedReceiverConfig) (*WindowedReceiver, error) {
	if cfg.Window == 0 {
		cfg.Window = 1
	}
	wr, err := core.NewWindowedReceiver(cfg.Window, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("netlink: windowed receiver: %w", err)
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = defaultRetryInterval
	}
	r := &WindowedReceiver{
		tap:        cfg.Tap,
		m:          newWindowReceiverMetrics(cfg.Metrics),
		k:          cfg.Window,
		wr:         wr,
		pending:    make(map[uint64][]byte),
		out:        make(chan []byte, cfg.Window*deliveryBuffer),
		deliver:    cfg.Deliver,
		accept:     cfg.Accept,
		interval:   cfg.RetryInterval,
		base:       cfg.RetryInterval,
		maxBackoff: cfg.RetryBackoffMax,
		stop:       make(chan struct{}),
	}
	// One accepted packet commits at most one protocol delivery, which
	// grows buffered-plus-parked by at most one; keeping that sum below
	// the buffer capacity guarantees a release burst (1 + drained
	// pending) always fits without blocking the pump. The gate runs on
	// the pump before r.mu is taken, while Close (another goroutine) may
	// be resetting the pending map under r.mu — so it reads the atomic
	// parked mirror, never the map. A user Accept narrows this gate,
	// never replaces it — the parked-set bound is what keeps release
	// bursts under WindowReleaseBound for the layer above.
	base := func() bool { return len(r.out)+int(r.parked.Load()) < cap(r.out) }
	if user := cfg.Accept; user != nil {
		r.accept = func() bool { return base() && user() }
	} else {
		r.accept = base
	}
	r.m.retryIntervalMS.Set(float64(r.interval) / float64(time.Millisecond))
	r.io = stationEndpoint(conn, cfg.Metrics)
	r.io.ep.SetHandler(r.handlePacket)
	r.mu.Lock()
	r.retry = r.io.ep.Wheel().AfterFunc(r.interval, r.retryTick)
	r.mu.Unlock()
	return r, nil
}

// Window returns the depth k.
func (r *WindowedReceiver) Window() int { return r.k }

func (r *WindowedReceiver) emit(e trace.Event) {
	if r.tap != nil {
		r.tap(e)
	}
}

// flushStats publishes per-incarnation protocol counters as deltas; call
// with r.mu held and always immediately before wr.Crash().
func (r *WindowedReceiver) flushStats() {
	st := r.wr.Stats()
	r.m.packetsSent.Add(int64(st.PacketsSent - r.last.PacketsSent))
	r.m.delivered.Add(int64(st.Delivered - r.last.Delivered))
	r.m.errorsCounted.Add(int64(st.ErrorsCounted - r.last.ErrorsCounted))
	r.m.challengeExts.Add(int64(st.Extensions - r.last.Extensions))
	r.m.replayRejections.Add(int64(st.Ignored - r.last.Ignored))
	r.last = st
}

// Recv blocks for the next in-order released message.
func (r *WindowedReceiver) Recv(ctx context.Context) ([]byte, error) {
	select {
	case m := <-r.out:
		return m, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-r.stop:
		select {
		case m := <-r.out:
			return m, nil
		default:
			return nil, ErrClosed
		}
	case <-r.io.ep.Dead():
		select {
		case m := <-r.out:
			return m, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Crash simulates crash^R with the shared crash model: every slot's
// protocol memory is erased at once. The release cursor and parked
// deliveries are runtime memory (the hosting process survives a protocol
// crash) and persist, exactly as the mux resequencer's do — that is what
// drops the redeliveries the crash licenses.
func (r *WindowedReceiver) Crash() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushStats()
	r.wr.Crash()
	r.last = core.RxStats{}
	r.m.crashes.Inc()
	r.emit(trace.Event{Kind: trace.KindCrashR})
}

// Stats returns the window's aggregated protocol counters.
func (r *WindowedReceiver) Stats() core.RxStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wr.Stats()
}

// Close stops the retry timer and detaches the station. Already-released
// messages stay drainable via Recv; parked out-of-order deliveries are
// counted as dropped (they were protocol-committed but can no longer be
// released in order).
func (r *WindowedReceiver) Close() error {
	r.closeOnce.Do(func() {
		r.mu.Lock()
		r.closed = true
		parked := len(r.pending)
		r.pending = make(map[uint64][]byte)
		r.parked.Store(0)
		r.mu.Unlock()
		if parked > 0 {
			r.m.deliveriesDropped.Add(int64(parked))
			r.m.windowPending.Set(0)
		}
		r.retry.Stop()
		close(r.stop)
		r.io.close()
	})
	return nil
}

// handlePacket is the engine-pump callback: one protocol round for one
// slot, replies flushed in one batched conn call. Deliveries are
// committed — taped, counted — under r.mu before the replies leave, then
// fed through the in-order release.
func (r *WindowedReceiver) handlePacket(p []byte) {
	r.arrivals.Add(1)
	if !r.accept() {
		r.m.ingressShed.Inc()
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	out := r.wr.ReceivePacket(p)
	r.m.packetsReceived.Inc()
	var release [][]byte
	for _, d := range out.Delivered {
		epoch, seq, msg, ok := unframeSeq(d.Msg)
		if !ok {
			// Only a non-windowed peer produces an unframed payload; it
			// cannot be sequenced, so it is dropped — and counted, never
			// silently.
			r.m.deliveriesDropped.Inc()
			continue
		}
		// The protocol delivery commits here, dup or not: a resubmitted
		// attempt is a distinct send_msg and verify licenses its delivery.
		// The seq layer above decides what the application sees.
		r.emit(trace.Event{Kind: trace.KindReceiveMsg, Msg: string(msg), Slot: d.Slot})
		switch {
		case epoch < r.epoch:
			// A straggler from a dead sender incarnation: its seq space
			// was abandoned when the higher epoch arrived.
			r.m.windowDupDropped.Inc()
			continue
		case epoch > r.epoch:
			// A rebuilt sender. Its admission seqs restart at zero; adopt
			// the new incarnation's seq space. Parked deliveries of the
			// old one can never release in order now — count them out.
			r.epoch = epoch
			r.nextSeq = 0
			if n := len(r.pending); n > 0 {
				r.m.deliveriesDropped.Add(int64(n))
				r.pending = make(map[uint64][]byte)
				r.parked.Store(0)
			}
		}
		release = append(release, r.commitSeq(seq, msg)...)
	}
	r.flushStats()
	r.m.windowPending.Set(float64(len(r.pending)))
	r.mu.Unlock()

	sendBatchTolerant(r.io.ep, out.Packets)
	r.handoff(release)
}

// commitSeq runs one delivery through the in-order release: duplicates
// (below the cursor, or already parked) are dropped, the cursor's seq
// releases itself plus every consecutively parked successor, and
// anything further ahead parks. Call with r.mu held.
func (r *WindowedReceiver) commitSeq(seq uint64, msg []byte) [][]byte {
	if seq < r.nextSeq {
		r.m.windowDupDropped.Inc()
		return nil
	}
	if _, dup := r.pending[seq]; dup {
		r.m.windowDupDropped.Inc()
		return nil
	}
	if seq != r.nextSeq {
		r.pending[seq] = msg
		r.parked.Add(1)
		return nil
	}
	release := [][]byte{msg}
	r.nextSeq++
	for {
		m, ok := r.pending[r.nextSeq]
		if !ok {
			break
		}
		delete(r.pending, r.nextSeq)
		r.parked.Add(-1)
		release = append(release, m)
		r.nextSeq++
	}
	r.m.windowReleased.Add(int64(len(release)))
	return release
}

// handoff moves released messages to the layer above. The accept gate
// reserved room for the whole burst, so the pushes cannot block; the
// default branch keeps the books balanced if that invariant is ever
// broken.
func (r *WindowedReceiver) handoff(release [][]byte) {
	if r.deliver != nil {
		for _, m := range release {
			r.deliver(m)
		}
		return
	}
	for i, m := range release {
		select {
		case r.out <- m:
		default:
			r.m.deliveriesDropped.Add(int64(len(release) - i))
			return
		}
	}
}

// retryTick fires RETRY on every slot in one wheel firing and flushes
// the whole window's CTL packets in one batched conn call — the windowed
// counterpart of Receiver.retryTick, with the same adaptive backoff.
func (r *WindowedReceiver) retryTick() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if n := r.arrivals.Load(); n != r.lastSeen {
		r.lastSeen = n
		r.interval = r.base
	} else if r.maxBackoff > r.base {
		r.interval *= 2
		if r.interval > r.maxBackoff {
			r.interval = r.maxBackoff
		}
	}
	r.m.retries.Inc()
	r.m.retryIntervalMS.Set(float64(r.interval) / float64(time.Millisecond))
	//lint:allow hotpathalloc windowed retransmit CTLs are fresh values crossing the conn, built per retry tick (loss-paced), not per packet
	out := r.wr.Retry()
	r.flushStats()
	r.retry.Reset(r.interval)
	r.mu.Unlock()
	sendBatchTolerant(r.io.ep, out.Packets)
}
