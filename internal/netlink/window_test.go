package netlink

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ghm/internal/metrics"
)

func newWindowedSession(t *testing.T, k int, cfg PipeConfig, reg *metrics.Registry) (*WindowedSender, *WindowedReceiver) {
	t.Helper()
	a, b := Pipe(cfg)
	s, err := NewWindowedSender(a, WindowedSenderConfig{Window: k, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewWindowedReceiver(b, WindowedReceiverConfig{Window: k, RetryInterval: testRetry, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		r.Close()
	})
	return s, r
}

// sendAll pushes msgs through s with up to k concurrent Sends and
// returns the per-message results.
func sendAll(ctx context.Context, s *WindowedSender, msgs [][]byte) []error {
	errs := make([]error, len(msgs))
	var wg sync.WaitGroup
	idx := make(chan int, len(msgs))
	for i := range msgs {
		idx <- i
	}
	close(idx)
	for g := 0; g < s.Window(); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = s.Send(ctx, msgs[i])
			}
		}()
	}
	wg.Wait()
	return errs
}

func TestWindowedPerfectLinkExactlyOnce(t *testing.T) {
	const k, total = 8, 100
	reg := metrics.New()
	s, r := newWindowedSession(t, k, PipeConfig{Seed: 11}, reg)
	ctx := testCtx(t)

	msgs := make([][]byte, total)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("w-%03d", i))
	}
	recvDone := make(chan map[string]int, 1)
	go func() {
		got := make(map[string]int)
		for i := 0; i < total; i++ {
			m, err := r.Recv(ctx)
			if err != nil {
				recvDone <- nil
				return
			}
			got[string(m)]++
		}
		recvDone <- got
	}()

	for i, err := range sendAll(ctx, s, msgs) {
		if err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	got := <-recvDone
	if got == nil {
		t.Fatal("receiver failed")
	}
	for _, m := range msgs {
		if got[string(m)] != 1 {
			t.Errorf("payload %q delivered %d times, want 1", m, got[string(m)])
		}
	}
	// Every admission was released: the cursor swept the whole stream and
	// nothing is parked.
	r.mu.Lock()
	next, parked := r.nextSeq, len(r.pending)
	r.mu.Unlock()
	if next != total || parked != 0 {
		t.Errorf("release cursor=%d parked=%d, want %d/0", next, parked, total)
	}
}

func TestWindowedInOrderReleaseUnderReordering(t *testing.T) {
	// A lossy, reordering, duplicating link completes slots out of order;
	// the receiver must still release in admission order.
	const k, total = 4, 60
	s, r := newWindowedSession(t, k, PipeConfig{Loss: 0.2, DupProb: 0.1, ReorderProb: 0.3, Seed: 12}, nil)
	ctx := testCtx(t)

	msgs := make([][]byte, total)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("ord-%03d", i))
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, k)
	for i := 0; i < total; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(m []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := s.Send(ctx, m); err != nil {
				t.Errorf("Send %q: %v", m, err)
			}
		}(msgs[i])
	}
	done := make(chan [][]byte, 1)
	go func() {
		var rel [][]byte
		for len(rel) < total {
			m, err := r.Recv(ctx)
			if err != nil {
				done <- nil
				return
			}
			rel = append(rel, m)
		}
		done <- rel
	}()
	wg.Wait()
	rel := <-done
	if rel == nil {
		t.Fatal("receiver failed")
	}
	// Admission order is internal state; what is externally exact: every
	// payload releases exactly once, the cursor sweeps the full stream,
	// and nothing stays parked — the release machine resolved every
	// reordering the link produced.
	seen := make(map[string]bool)
	for _, m := range rel {
		if seen[string(m)] {
			t.Fatalf("payload %q released twice", m)
		}
		seen[string(m)] = true
	}
	r.mu.Lock()
	next, parked := r.nextSeq, len(r.pending)
	r.mu.Unlock()
	if next != total || parked != 0 {
		t.Errorf("release cursor=%d parked=%d, want %d/0", next, parked, total)
	}
}

func TestWindowedCommitSeqOrdering(t *testing.T) {
	// Unit test of the release machine: out-of-order commits park, the
	// cursor releases runs, duplicates drop.
	r := &WindowedReceiver{
		m:       newWindowReceiverMetrics(metrics.New()),
		pending: make(map[uint64][]byte),
	}
	if got := r.commitSeq(2, []byte("c")); len(got) != 0 {
		t.Fatalf("seq 2 before 0: released %q", got)
	}
	if got := r.commitSeq(1, []byte("b")); len(got) != 0 {
		t.Fatalf("seq 1 before 0: released %q", got)
	}
	got := r.commitSeq(0, []byte("a"))
	want := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	if len(got) != len(want) {
		t.Fatalf("released %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("release[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Duplicates: below the cursor, and double-parked.
	if got := r.commitSeq(1, []byte("b")); len(got) != 0 {
		t.Fatalf("dup below cursor released %q", got)
	}
	if got := r.commitSeq(5, []byte("f")); len(got) != 0 {
		t.Fatalf("parked seq released %q", got)
	}
	if got := r.commitSeq(5, []byte("f")); len(got) != 0 {
		t.Fatalf("dup parked seq released %q", got)
	}
	if r.m.windowDupDropped == nil {
		t.Fatal("dup counter missing")
	}
}

func TestWindowedCrashWipesAndResubmitHealsStream(t *testing.T) {
	// A crash^T mid-stream wipes the whole window: pending Sends fail,
	// and byte-identical resubmission reuses the wiped seqs so the
	// receiver releases every payload exactly once with no holes.
	const k, total = 4, 24
	reg := metrics.New()
	// Latency keeps transfers in flight long enough for Crash to land on
	// a busy window.
	s, r := newWindowedSession(t, k, PipeConfig{Latency: 2 * time.Millisecond, Seed: 13}, reg)
	ctx := testCtx(t)

	msgs := make([][]byte, total)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("crash-%03d", i))
	}

	got := make(map[string]int)
	recvDone := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			m, err := r.Recv(ctx)
			if err != nil {
				recvDone <- err
				return
			}
			got[string(m)]++
		}
		recvDone <- nil
	}()

	crashFired := make(chan struct{})
	go func() {
		defer close(crashFired)
		time.Sleep(3 * time.Millisecond)
		s.Crash()
	}()

	// First wave: some Sends fail with ErrCrashed; resubmit those until
	// every payload is confirmed.
	pendingMsgs := msgs
	for round := 0; len(pendingMsgs) > 0 && round < 10; round++ {
		var failed [][]byte
		errs := sendAll(ctx, s, pendingMsgs)
		for i, err := range errs {
			switch {
			case err == nil:
			case errors.Is(err, ErrCrashed):
				failed = append(failed, pendingMsgs[i])
			default:
				t.Fatalf("Send %q: %v", pendingMsgs[i], err)
			}
		}
		pendingMsgs = failed
	}
	<-crashFired
	if len(pendingMsgs) > 0 {
		t.Fatalf("%d payloads still unconfirmed after resubmission rounds", len(pendingMsgs))
	}
	if err := <-recvDone; err != nil {
		t.Fatalf("receiver: %v", err)
	}
	for _, m := range msgs {
		if got[string(m)] != 1 {
			t.Errorf("payload %q released %d times, want exactly 1", m, got[string(m)])
		}
	}
	snap := reg.Snapshot()
	if snap.Counters[mTxCrashes] < 1 {
		t.Errorf("tx.crashes = %d, want >= 1", snap.Counters[mTxCrashes])
	}
}

func TestWindowedSendAccounting(t *testing.T) {
	// tx.send_msgs == tx.oks + tx.abandoned must hold for the windowed
	// station across a crash, same as for the single-slot one.
	const k, total = 4, 20
	reg := metrics.New()
	s, r := newWindowedSession(t, k, PipeConfig{Latency: 1 * time.Millisecond, Seed: 14}, reg)
	ctx := testCtx(t)
	go func() {
		for {
			if _, err := r.Recv(ctx); err != nil {
				return
			}
		}
	}()
	msgs := make([][]byte, total)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("acct-%03d", i))
	}
	half := msgs[:total/2]
	for i, err := range sendAll(ctx, s, half) {
		if err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	// Crash with the second half in flight: some abandon.
	done := make(chan []error, 1)
	go func() { done <- sendAll(ctx, s, msgs[total/2:]) }()
	time.Sleep(2 * time.Millisecond)
	s.Crash()
	for _, err := range <-done {
		if err != nil && !errors.Is(err, ErrCrashed) {
			t.Fatalf("unexpected Send error: %v", err)
		}
	}
	snap := reg.Snapshot()
	sends := snap.Counters[mTxSendMsgs]
	oks := snap.Counters[mTxOKs]
	abandoned := snap.Counters[mTxAbandoned]
	if sends != oks+abandoned {
		t.Errorf("tx.send_msgs=%d != tx.oks=%d + tx.abandoned=%d", sends, oks, abandoned)
	}
	if snap.Counters[mTxWindowAdmitted] != sends {
		t.Errorf("tx.window_admitted=%d != tx.send_msgs=%d", snap.Counters[mTxWindowAdmitted], sends)
	}
}

func TestWindowedCancelVsOKNeverLosesDelivery(t *testing.T) {
	// The delivered-but-reported-failed race, windowed edition: when the
	// OK resolves concurrently with a context cancellation, Send must
	// return nil (the transfer completed), never ctx.Err(). Sweep the
	// cancellation across the OK's arrival window.
	reg := metrics.New()
	s, r := newWindowedSession(t, 2, PipeConfig{Seed: 15}, reg)
	bg := testCtx(t)
	go func() {
		for {
			if _, err := r.Recv(bg); err != nil {
				return
			}
		}
	}()
	delivered := 0
	for i := 0; i < 200; i++ {
		ctx, cancel := context.WithCancel(bg)
		go func() {
			// Race the cancel against the round-trip.
			time.Sleep(time.Duration(i%40) * 10 * time.Microsecond)
			cancel()
		}()
		err := s.Send(ctx, []byte(fmt.Sprintf("race-%03d", i)))
		cancel()
		if err == nil {
			delivered++
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, ErrCrashed) {
			t.Fatalf("Send %d: unexpected error %v", i, err)
		}
	}
	// The consistency claim is in the metrics: every admission ended as
	// exactly one of OK or abandoned — a drained late-OK counts as OK and
	// was returned as success, not both.
	snap := reg.Snapshot()
	sends := snap.Counters[mTxSendMsgs]
	oks := snap.Counters[mTxOKs]
	abandoned := snap.Counters[mTxAbandoned]
	if sends != oks+abandoned {
		t.Errorf("tx.send_msgs=%d != tx.oks=%d + tx.abandoned=%d", sends, oks, abandoned)
	}
	if int64(delivered) != oks {
		t.Errorf("Send returned nil %d times but tx.oks=%d — a delivered transfer was reported failed", delivered, oks)
	}
}

func TestWindowedConfigValidation(t *testing.T) {
	a, b := Pipe(PipeConfig{Seed: 16})
	defer a.Close()
	defer b.Close()
	if _, err := NewWindowedSender(a, WindowedSenderConfig{Window: -1}); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := NewWindowedReceiver(b, WindowedReceiverConfig{Window: 1000}); err == nil {
		t.Error("oversized window accepted")
	}
}

// TestWindowedCrashTwinPayloadsEachReclaimSeq pins the wiped-map shape:
// two byte-identical payloads in flight on different slots when the
// crash lands must each keep their own admission seq. A map keyed by
// payload alone overwrites one of them, so one resubmission would mint
// a fresh seq, leave a permanent hole at the receiver's release cursor,
// and stall the stream forever.
func TestWindowedCrashTwinPayloadsEachReclaimSeq(t *testing.T) {
	const k = 2
	reg := metrics.New()
	a, b := Pipe(PipeConfig{Seed: 18})
	ia := Impair(a, ImpairConfig{})
	s, err := NewWindowedSender(ia, WindowedSenderConfig{Window: k, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := NewWindowedReceiver(b, WindowedReceiverConfig{Window: k, RetryInterval: testRetry, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := testCtx(t)

	// Black out the data direction so both admissions stay in flight.
	ia.SetBlackout(true)
	twin := []byte("twin")
	done := make(chan error, k)
	for i := 0; i < k; i++ {
		go func() { done <- s.Send(ctx, twin) }()
	}
	for {
		s.mu.Lock()
		inflight := 0
		for _, m := range s.slotMsg {
			if m != nil {
				inflight++
			}
		}
		s.mu.Unlock()
		if inflight == k {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("admissions never both in flight")
		case <-time.After(100 * time.Microsecond):
		}
	}
	s.Crash()
	for i := 0; i < k; i++ {
		if err := <-done; !errors.Is(err, ErrCrashed) {
			t.Fatalf("crashed Send returned %v, want ErrCrashed", err)
		}
	}
	s.mu.Lock()
	wipedSeqs := len(s.wiped[string(twin)])
	s.mu.Unlock()
	if wipedSeqs != k {
		t.Fatalf("wiped multiset holds %d seqs for the twin payload, want %d", wipedSeqs, k)
	}

	// Heal the link and resubmit both byte-identical attempts
	// sequentially, in the outbox's admission-order lockstep: each must
	// reclaim one distinct wiped seq, lowest first, so every release
	// arrives before the next attempt is even issued and the cursor
	// sweeps 0..k with no hole.
	ia.SetBlackout(false)
	for i := 0; i < k; i++ {
		if err := s.Send(ctx, twin); err != nil {
			t.Fatalf("resubmit %d: %v", i, err)
		}
		m, err := r.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv %d: %v (release stalled — wiped seq lost or reused out of order)", i, err)
		}
		if !bytes.Equal(m, twin) {
			t.Fatalf("Recv %d = %q, want %q", i, m, twin)
		}
	}
	s.mu.Lock()
	next, leftover := s.nextSeq, len(s.wiped)
	s.mu.Unlock()
	if next != k || leftover != 0 {
		t.Errorf("sender nextSeq=%d, leftover wiped entries=%d, want %d/0 (no fresh seq minted, every wiped seq reclaimed)", next, leftover, k)
	}
	r.mu.Lock()
	cursor, parked := r.nextSeq, len(r.pending)
	r.mu.Unlock()
	if cursor != k || parked != 0 {
		t.Errorf("release cursor=%d parked=%d, want %d/0", cursor, parked, k)
	}
}

// TestWindowedReceiverCloseDuringIngress closes a windowed receiver
// while traffic is still arriving on the engine pump: the accept gate
// runs before r.mu is taken, so it must read the atomic parked mirror,
// not the pending map Close is swapping out — the race detector pins
// the regression.
func TestWindowedReceiverCloseDuringIngress(t *testing.T) {
	const k, total = 4, 200
	s, r := newWindowedSession(t, k, PipeConfig{Seed: 19}, nil)
	ctx, cancel := context.WithTimeout(testCtx(t), 200*time.Millisecond)
	defer cancel()
	go func() {
		for {
			if _, err := r.Recv(ctx); err != nil {
				return
			}
		}
	}()
	msgs := make([][]byte, total)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("close-%03d", i))
	}
	done := make(chan []error, 1)
	go func() { done <- sendAll(ctx, s, msgs) }()
	time.Sleep(2 * time.Millisecond)
	r.Close()
	// Sends racing the teardown may have completed, crashed or timed out;
	// any of those is fine — what the test pins is that the accept gate
	// and Close never touch the pending map concurrently.
	<-done
}

// TestWindowedEpochAdoptionAcrossSenderRebuild replays the supervised
// session's restart scenario: a fresh WindowedSender, whose admission
// seqs restart at zero, attaches to the same link a long-lived
// WindowedReceiver is parked on. Without the epoch prefix the receiver's
// release cursor would drop the rebuilt sender's entire seq space as
// duplicates and the stream would wedge forever; a higher epoch must
// instead reset the cursor and let the new stream flow.
func TestWindowedEpochAdoptionAcrossSenderRebuild(t *testing.T) {
	const k, per = 4, 10
	reg := metrics.New()
	a, b := Pipe(PipeConfig{Seed: 17})
	sc := NewSharedConn(a)
	defer sc.Close()
	r, err := NewWindowedReceiver(b, WindowedReceiverConfig{Window: k, RetryInterval: testRetry, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := testCtx(t)

	incarnation := func(epoch uint64, prefix string) {
		t.Helper()
		conn, err := sc.Attach()
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewWindowedSender(conn, WindowedSenderConfig{Window: k, Epoch: epoch, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		msgs := make([][]byte, per)
		for i := range msgs {
			msgs[i] = []byte(fmt.Sprintf("%s-%02d", prefix, i))
		}
		for i, err := range sendAll(ctx, s, msgs) {
			if err != nil {
				t.Fatalf("%s Send %d: %v", prefix, i, err)
			}
		}
		got := make(map[string]int, per)
		for i := 0; i < per; i++ {
			m, err := r.Recv(ctx)
			if err != nil {
				t.Fatalf("%s Recv %d: %v", prefix, i, err)
			}
			got[string(m)]++
		}
		for _, m := range msgs {
			if got[string(m)] != 1 {
				t.Errorf("%s payload %q delivered %d times, want 1", prefix, m, got[string(m)])
			}
		}
	}

	incarnation(1, "gen1")
	// The rebuild: epoch 2 reuses seqs 0..per-1, which sit below the
	// receiver's cursor. Only epoch adoption lets these through.
	incarnation(2, "gen2")

	// A straggler from the dead incarnation must not regress the stream:
	// its deliveries are dropped as duplicates, not released.
	conn, err := sc.Attach()
	if err != nil {
		t.Fatal(err)
	}
	stale, err := NewWindowedSender(conn, WindowedSenderConfig{Window: k, Epoch: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	before := reg.Snapshot().Counters[mRxWindowDupDropped]
	// The protocol round-trip still completes — the receiving station
	// ACKs the transfer — but the seq layer discards the payload.
	if err := stale.Send(ctx, []byte("ghost")); err != nil {
		t.Fatalf("stale Send: %v", err)
	}
	if after := reg.Snapshot().Counters[mRxWindowDupDropped]; after <= before {
		t.Errorf("stale-epoch delivery not counted dropped: rx.window_dup_dropped %d -> %d", before, after)
	}
	r.mu.Lock()
	buffered, parked := len(r.out), len(r.pending)
	r.mu.Unlock()
	if buffered != 0 || parked != 0 {
		t.Errorf("stale-epoch payload leaked: %d buffered, %d parked", buffered, parked)
	}
}
