package outbox

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// collector is a SendFunc that records messages, with scriptable failures.
type collector struct {
	mu   sync.Mutex
	got  [][]byte
	fail func(attempt int, msg []byte) error
	n    int
}

func (c *collector) send(ctx context.Context, msg []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	if c.fail != nil {
		if err := c.fail(c.n, msg); err != nil {
			return err
		}
	}
	c.got = append(c.got, append([]byte(nil), msg...))
	return nil
}

func (c *collector) messages() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.got))
	for i, m := range c.got {
		out[i] = string(m)
	}
	return out
}

var errCrash = errors.New("station crashed")

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestOrderedDelivery(t *testing.T) {
	var c collector
	q, err := New(Config{Send: c.send})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for i := 0; i < 10; i++ {
		if _, err := q.Enqueue([]byte(fmt.Sprintf("m-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	got := c.messages()
	if len(got) != 10 {
		t.Fatalf("sent %d messages", len(got))
	}
	for i, m := range got {
		if want := fmt.Sprintf("m-%d", i); m != want {
			t.Errorf("position %d = %q, want %q", i, m, want)
		}
	}
	st := q.Stats()
	if st.Sent != 10 || st.Pending != 0 || st.Resubmits != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestResubmitOnRetryableError(t *testing.T) {
	c := collector{fail: func(attempt int, msg []byte) error {
		if attempt <= 2 { // first two attempts crash
			return errCrash
		}
		return nil
	}}
	q, err := New(Config{
		Send:      c.send,
		Retryable: func(err error) bool { return errors.Is(err, errCrash) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Enqueue([]byte("survivor")); err != nil {
		t.Fatal(err)
	}
	if err := q.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if got := c.messages(); len(got) != 1 || got[0] != "survivor" {
		t.Fatalf("messages = %v", got)
	}
	if st := q.Stats(); st.Resubmits != 2 {
		t.Errorf("Resubmits = %d, want 2", st.Resubmits)
	}
}

func TestFatalErrorSticks(t *testing.T) {
	boom := errors.New("boom")
	c := collector{fail: func(int, []byte) error { return boom }}
	q, err := New(Config{Send: c.send}) // no Retryable: any error is fatal
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Enqueue([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := q.Flush(testCtx(t)); !errors.Is(err, boom) {
		t.Fatalf("Flush = %v, want boom", err)
	}
	if err := q.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v", err)
	}
	if _, err := q.Enqueue([]byte("y")); !errors.Is(err, boom) {
		t.Fatalf("Enqueue after failure = %v", err)
	}
}

func TestMaxAttempts(t *testing.T) {
	c := collector{fail: func(int, []byte) error { return errCrash }}
	q, err := New(Config{
		Send:        c.send,
		Retryable:   func(err error) bool { return errors.Is(err, errCrash) },
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Enqueue([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := q.Flush(testCtx(t)); !errors.Is(err, errCrash) {
		t.Fatalf("Flush = %v", err)
	}
	if st := q.Stats(); st.Resubmits != 2 { // attempts 1..3, two resubmits
		t.Errorf("Resubmits = %d, want 2", st.Resubmits)
	}
}

func TestWALPersistsBacklogAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.wal")

	// First life: enqueue 3, deliver 1; the second send never completes
	// (it dies with the context when the "process" goes down), so
	// messages 1 and 2 stay in the WAL.
	inFlight := make(chan struct{})
	var calls int
	var mu sync.Mutex
	firstSend := func(ctx context.Context, msg []byte) error {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n >= 2 {
			if n == 2 {
				close(inFlight)
			}
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}
	q1, err := New(Config{Send: firstSend, WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := q1.Enqueue([]byte(fmt.Sprintf("wal-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	<-inFlight // message 0 delivered, message 1 in flight
	q1.Close()

	// Second life: the backlog must contain messages 1 and 2 (0 was
	// confirmed; 1 was in flight and unconfirmed, so it reappears —
	// at-least-once across crashes, as documented).
	var second collector
	q2, err := New(Config{Send: second.send, WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if err := q2.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	got := second.messages()
	if len(got) < 2 {
		t.Fatalf("second life sent %v", got)
	}
	if got[len(got)-1] != "wal-2" {
		t.Errorf("last message = %q, want wal-2", got[len(got)-1])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("order broken: %v", got)
		}
	}
}

func TestWALSurvivesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.wal")
	var c collector
	q, err := New(Config{Send: c.send, WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue([]byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	q.Close()

	// Corrupt the tail: append garbage mimicking a crash mid-write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{recEnqueue, 0xFF}) // truncated varint
	f.Close()

	var c2 collector
	q2, err := New(Config{Send: c2.send, WALPath: path})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer q2.Close()
	if err := q2.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if got := c2.messages(); len(got) != 1 || got[0] != "keep-me" {
		t.Fatalf("messages = %v", got)
	}
}

func TestWALCompactionDropsDone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.wal")
	var c collector
	q, err := New(Config{Send: c.send, WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := q.Enqueue([]byte(fmt.Sprintf("m-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	q.Close()

	// Reopen compacts: everything was confirmed, so the file shrinks to
	// (near) empty.
	var c2 collector
	q2, err := New(Config{Send: c2.send, WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	q2.Close()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Errorf("compacted WAL is %d bytes, want 0", info.Size())
	}
}

func TestIDsAreUniqueAcrossLives(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.wal")
	var c collector
	q, err := New(Config{Send: c.send, WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := q.Enqueue([]byte("a"))
	q.Flush(testCtx(t))
	q.Close()

	q2, err := New(Config{Send: c.send, WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	id2, _ := q2.Enqueue([]byte("b"))
	if id2 <= id1 {
		t.Errorf("id reuse across lives: %d then %d", id1, id2)
	}
}

func TestWALSyncRoundtrip(t *testing.T) {
	// Behavioural parity: with WALSync every enqueue fsyncs, and the
	// backlog still persists and replays identically.
	path := filepath.Join(t.TempDir(), "outbox.wal")
	q, err := New(Config{
		Send:    func(ctx context.Context, msg []byte) error { <-ctx.Done(); return ctx.Err() },
		WALPath: path, WALSync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := q.Enqueue([]byte(fmt.Sprintf("sync-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()

	var c collector
	q2, err := New(Config{Send: c.send, WALPath: path, WALSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if err := q2.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if got := c.messages(); len(got) != 3 || got[0] != "sync-0" || got[2] != "sync-2" {
		t.Fatalf("messages = %v", got)
	}
}

func TestCloseIdempotentAndUnblocks(t *testing.T) {
	blocked := make(chan struct{})
	q, err := New(Config{Send: func(ctx context.Context, msg []byte) error {
		close(blocked)
		<-ctx.Done()
		return ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue([]byte("stuck")); err != nil {
		t.Fatal(err)
	}
	<-blocked
	done := make(chan struct{})
	go func() {
		q.Close()
		q.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the in-flight send")
	}
	if _, err := q.Enqueue([]byte("late")); err == nil {
		t.Error("Enqueue after Close succeeded")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing Send accepted")
	}
	if _, err := New(Config{Send: func(context.Context, []byte) error { return nil },
		WALPath: filepath.Join(t.TempDir(), "sub", "nope", "x.wal")}); err == nil {
		t.Error("unwritable WAL path accepted")
	}
}
