package outbox

import (
	"context"
	"fmt"
	"sync"
)

// SendFunc transfers one message, blocking until it is confirmed
// delivered. ghm.Sender.Send and ghm.Peer.Send have this shape.
type SendFunc func(ctx context.Context, msg []byte) error

// Config parameterizes a Queue.
type Config struct {
	// Send transfers messages. Required.
	Send SendFunc
	// Retryable reports whether a Send error means "resubmit" (a station
	// crash wiped the in-flight message) rather than "give up". Nil means
	// never resubmit.
	Retryable func(error) bool
	// WALPath persists the backlog; empty means memory-only.
	WALPath string
	// WALSync fsyncs every enqueue record to the device before Enqueue
	// returns (power-loss durability); without it, records are flushed to
	// the kernel per enqueue (process-crash durability).
	WALSync bool
	// MaxAttempts bounds resubmissions per message (0 = unlimited).
	MaxAttempts int
	// Window is the number of concurrent send workers (default 1). Each
	// worker claims the oldest unclaimed backlog message, so dispatch
	// follows enqueue order; more than one worker only helps when Send
	// admits concurrent transfers (a windowed station, whose receiver
	// restores admission order — with a plain stop-and-wait station the
	// extra workers just serialize on it).
	Window int
}

// Stats counts queue activity.
type Stats struct {
	Enqueued  int // messages accepted
	Sent      int // messages confirmed
	Resubmits int // crash-triggered retries
	Pending   int // messages not yet confirmed
}

// entry is one backlog message plus its dispatch state.
type entry struct {
	id       uint64
	msg      []byte
	claimed  bool // held by a worker's in-flight Send
	attempts int  // failed Sends so far
}

// Queue is the buffering higher layer: enqueue at will, messages go out
// in order — one at a time by default, up to Window at a time with
// concurrent workers — and crashes cause resubmission.
type Queue struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	backlog []*entry
	nextID  uint64
	log     *wal
	stats   Stats
	err     error // sticky fatal error from Send
	closed  bool

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// New opens the queue (replaying the WAL backlog if configured) and
// starts its workers.
func New(cfg Config) (*Queue, error) {
	if cfg.Send == nil {
		return nil, fmt.Errorf("outbox: Send is required")
	}
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	q := &Queue{cfg: cfg, done: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	q.ctx, q.cancel = context.WithCancel(context.Background())

	if cfg.WALPath != "" {
		log, backlog, nextID, err := openWAL(cfg.WALPath, cfg.WALSync)
		if err != nil {
			return nil, err
		}
		q.log = log
		for _, e := range backlog {
			q.backlog = append(q.backlog, &entry{id: e.id, msg: e.msg})
		}
		q.nextID = nextID
		q.stats.Pending = len(backlog)
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.Window; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.worker()
		}()
	}
	go func() {
		wg.Wait()
		close(q.done)
	}()
	return q, nil
}

// Enqueue accepts a message for ordered, confirmed delivery and returns
// its queue id. With a WAL, the message is durable before Enqueue
// returns.
func (q *Queue) Enqueue(msg []byte) (uint64, error) {
	cp := append([]byte(nil), msg...)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, errClosed
	}
	if q.err != nil {
		return 0, q.err
	}
	id := q.nextID
	q.nextID++
	if q.log != nil {
		if err := q.log.appendEnqueue(id, cp); err != nil {
			return 0, err
		}
	}
	q.backlog = append(q.backlog, &entry{id: id, msg: cp})
	q.stats.Enqueued++
	q.stats.Pending++
	q.cond.Broadcast()
	return id, nil
}

// Flush blocks until the backlog is empty, the queue fails, or ctx ends.
func (q *Queue) Flush(ctx context.Context) error {
	// Wake the waiter when ctx ends: Cond has no context support, so a
	// helper goroutine broadcasts on cancellation.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-ctx.Done():
			q.cond.Broadcast()
		case <-stopWatch:
		}
	}()

	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.backlog) > 0 && q.err == nil && !q.closed {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		q.cond.Wait()
	}
	if q.err != nil {
		return q.err
	}
	if q.closed && len(q.backlog) > 0 {
		return errClosed
	}
	return ctx.Err()
}

// Stats returns a snapshot of the counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Err returns the queue's sticky fatal error, if any.
func (q *Queue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// Close stops the worker (abandoning any in-flight Send) and closes the
// WAL; unsent messages stay in the log for the next open.
func (q *Queue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.done
		return nil
	}
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()

	q.cancel()
	<-q.done

	q.mu.Lock()
	defer q.mu.Unlock()
	return q.log.close()
}

// claim returns the oldest unclaimed backlog entry, or nil. Call with
// q.mu held.
func (q *Queue) claim() *entry {
	for _, e := range q.backlog {
		if !e.claimed {
			e.claimed = true
			return e
		}
	}
	return nil
}

// remove drops a confirmed entry from the backlog. Call with q.mu held.
func (q *Queue) remove(id uint64) {
	for i, e := range q.backlog {
		if e.id == id {
			q.backlog = append(q.backlog[:i], q.backlog[i+1:]...)
			return
		}
	}
}

// worker claims backlog messages in enqueue order and drives each
// through Send. With Window workers, up to Window claims are in flight
// at once; a failed retryable Send unclaims its message, so any worker
// — not necessarily the same one — resubmits it, byte-identical (which
// is what lets a windowed station's receiver drop the duplicate by its
// reused admission seq).
func (q *Queue) worker() {
	for {
		q.mu.Lock()
		var head *entry
		for {
			if head = q.claim(); head != nil || q.closed || q.err != nil {
				break
			}
			q.cond.Wait()
		}
		if q.closed || q.err != nil {
			q.mu.Unlock()
			return
		}
		q.mu.Unlock()

		err := q.cfg.Send(q.ctx, head.msg)
		if err == nil {
			q.mu.Lock()
			q.remove(head.id)
			q.stats.Sent++
			q.stats.Pending--
			if q.log != nil {
				if werr := q.log.appendDone(head.id); werr != nil && q.err == nil {
					q.err = werr
				}
			}
			q.cond.Broadcast()
			q.mu.Unlock()
			continue
		}
		if q.ctx.Err() != nil {
			return // closing
		}

		q.mu.Lock()
		head.attempts++
		if q.cfg.Retryable != nil && q.cfg.Retryable(err) &&
			(q.cfg.MaxAttempts == 0 || head.attempts < q.cfg.MaxAttempts) {
			head.claimed = false
			q.stats.Resubmits++
			q.cond.Broadcast()
			q.mu.Unlock()
			continue
		}
		q.err = fmt.Errorf("outbox: message %d: %w", head.id, err)
		q.cond.Broadcast()
		q.mu.Unlock()
		return
	}
}
