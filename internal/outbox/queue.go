package outbox

import (
	"context"
	"fmt"
	"sync"
)

// SendFunc transfers one message, blocking until it is confirmed
// delivered. ghm.Sender.Send and ghm.Peer.Send have this shape.
type SendFunc func(ctx context.Context, msg []byte) error

// Config parameterizes a Queue.
type Config struct {
	// Send transfers messages. Required.
	Send SendFunc
	// Retryable reports whether a Send error means "resubmit" (a station
	// crash wiped the in-flight message) rather than "give up". Nil means
	// never resubmit.
	Retryable func(error) bool
	// WALPath persists the backlog; empty means memory-only.
	WALPath string
	// WALSync fsyncs every enqueue record to the device before Enqueue
	// returns (power-loss durability); without it, records are flushed to
	// the kernel per enqueue (process-crash durability).
	WALSync bool
	// MaxAttempts bounds resubmissions per message (0 = unlimited).
	MaxAttempts int
}

// Stats counts queue activity.
type Stats struct {
	Enqueued  int // messages accepted
	Sent      int // messages confirmed
	Resubmits int // crash-triggered retries
	Pending   int // messages not yet confirmed
}

// Queue is the buffering higher layer: enqueue at will, messages go out
// one at a time in order, crashes cause resubmission.
type Queue struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	backlog []walEntry
	nextID  uint64
	log     *wal
	stats   Stats
	err     error // sticky fatal error from Send
	closed  bool

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// New opens the queue (replaying the WAL backlog if configured) and
// starts its worker.
func New(cfg Config) (*Queue, error) {
	if cfg.Send == nil {
		return nil, fmt.Errorf("outbox: Send is required")
	}
	q := &Queue{cfg: cfg, done: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	q.ctx, q.cancel = context.WithCancel(context.Background())

	if cfg.WALPath != "" {
		log, backlog, nextID, err := openWAL(cfg.WALPath, cfg.WALSync)
		if err != nil {
			return nil, err
		}
		q.log = log
		q.backlog = backlog
		q.nextID = nextID
		q.stats.Pending = len(backlog)
	}
	go q.worker()
	return q, nil
}

// Enqueue accepts a message for ordered, confirmed delivery and returns
// its queue id. With a WAL, the message is durable before Enqueue
// returns.
func (q *Queue) Enqueue(msg []byte) (uint64, error) {
	cp := append([]byte(nil), msg...)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, errClosed
	}
	if q.err != nil {
		return 0, q.err
	}
	id := q.nextID
	q.nextID++
	if q.log != nil {
		if err := q.log.appendEnqueue(id, cp); err != nil {
			return 0, err
		}
	}
	q.backlog = append(q.backlog, walEntry{id: id, msg: cp})
	q.stats.Enqueued++
	q.stats.Pending++
	q.cond.Broadcast()
	return id, nil
}

// Flush blocks until the backlog is empty, the queue fails, or ctx ends.
func (q *Queue) Flush(ctx context.Context) error {
	// Wake the waiter when ctx ends: Cond has no context support, so a
	// helper goroutine broadcasts on cancellation.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-ctx.Done():
			q.cond.Broadcast()
		case <-stopWatch:
		}
	}()

	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.backlog) > 0 && q.err == nil && !q.closed {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		q.cond.Wait()
	}
	if q.err != nil {
		return q.err
	}
	if q.closed && len(q.backlog) > 0 {
		return errClosed
	}
	return ctx.Err()
}

// Stats returns a snapshot of the counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Err returns the queue's sticky fatal error, if any.
func (q *Queue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// Close stops the worker (abandoning any in-flight Send) and closes the
// WAL; unsent messages stay in the log for the next open.
func (q *Queue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.done
		return nil
	}
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()

	q.cancel()
	<-q.done

	q.mu.Lock()
	defer q.mu.Unlock()
	return q.log.close()
}

// worker drains the backlog in order.
func (q *Queue) worker() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for len(q.backlog) == 0 && !q.closed && q.err == nil {
			q.cond.Wait()
		}
		if q.closed || q.err != nil {
			q.mu.Unlock()
			return
		}
		head := q.backlog[0]
		q.mu.Unlock()

		attempts := 0
		for {
			err := q.cfg.Send(q.ctx, head.msg)
			if err == nil {
				break
			}
			if q.ctx.Err() != nil {
				return // closing
			}
			attempts++
			if q.cfg.Retryable != nil && q.cfg.Retryable(err) &&
				(q.cfg.MaxAttempts == 0 || attempts < q.cfg.MaxAttempts) {
				q.mu.Lock()
				q.stats.Resubmits++
				q.mu.Unlock()
				continue
			}
			q.mu.Lock()
			q.err = fmt.Errorf("outbox: message %d: %w", head.id, err)
			q.cond.Broadcast()
			q.mu.Unlock()
			return
		}

		q.mu.Lock()
		// The head cannot have moved: this worker is the only consumer.
		q.backlog = q.backlog[1:]
		q.stats.Sent++
		q.stats.Pending--
		if q.log != nil {
			if err := q.log.appendDone(head.id); err != nil && q.err == nil {
				q.err = err
			}
		}
		q.cond.Broadcast()
		q.mu.Unlock()
	}
}
