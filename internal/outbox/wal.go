// Package outbox implements the higher layer the paper's Axiom 1 assumes:
// "the data link does not need to buffer messages. These messages are
// buffered instead in the higher layer."
//
// A Queue accepts messages, feeds them one at a time to a blocking send
// function (ghm.Sender.Send has exactly the right shape), resubmits
// messages wiped by station crashes, and — optionally — persists its
// backlog in a write-ahead log so the queue itself survives process
// restarts. The protocol stations' memory is volatile by design (that is
// the paper's entire premise); the application's send queue need not be.
//
// Semantics: exactly-once end to end while no station crashes (the
// protocol's own guarantee); at-least-once across sender crashes, because
// a wiped in-flight message may or may not have reached the receiver and
// the queue resubmits it. Consumers needing exactly-once across crashes
// deduplicate by application-level message id, which Queue assigns and
// exposes.
package outbox

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// WAL record kinds.
const (
	recEnqueue byte = 1
	recDone    byte = 2
)

// maxWALPayload bounds replayed message bodies (defensive: a corrupted
// length prefix must not allocate gigabytes).
const maxWALPayload = 64 << 20

// wal is an append-only log of enqueue/done records. The tail may be torn
// by a crash mid-write; replay stops at the first malformed record and
// the file is truncated to the last good offset on open.
type wal struct {
	f    *os.File
	w    *bufio.Writer
	sync bool // fsync after every enqueue record
}

// walEntry is one surviving message after replay.
type walEntry struct {
	id  uint64
	msg []byte
}

// openWAL opens (or creates) the log at path, replays it, compacts the
// surviving backlog into a fresh file, and returns the open log plus the
// backlog in enqueue order. With sync set, every subsequent enqueue
// record is fsynced before Enqueue returns.
func openWAL(path string, sync bool) (*wal, []walEntry, uint64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("outbox: open wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("outbox: replay wal: %w", err)
	}
	entries, nextID, err := replayWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}

	// Compact: rewrite only the surviving backlog. Write to a temp file
	// and rename over, so a crash during compaction loses nothing.
	tmp := path + ".compact"
	tf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("outbox: compact wal: %w", err)
	}
	bw := bufio.NewWriter(tf)
	for _, e := range entries {
		if err := writeRecord(bw, recEnqueue, e.id, e.msg); err != nil {
			tf.Close()
			f.Close()
			return nil, nil, 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		tf.Close()
		f.Close()
		return nil, nil, 0, fmt.Errorf("outbox: compact wal: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		f.Close()
		return nil, nil, 0, fmt.Errorf("outbox: compact wal: %w", err)
	}
	f.Close()
	if err := os.Rename(tmp, path); err != nil {
		tf.Close()
		return nil, nil, 0, fmt.Errorf("outbox: compact wal: %w", err)
	}
	if _, err := tf.Seek(0, io.SeekEnd); err != nil {
		tf.Close()
		return nil, nil, 0, fmt.Errorf("outbox: compact wal: %w", err)
	}
	return &wal{f: tf, w: bufio.NewWriter(tf), sync: sync}, entries, nextID, nil
}

// replayWAL scans a log, returning the not-yet-done entries in order and
// the next free id. A torn tail — truncation, a corrupt length, an
// unknown kind — ends the replay silently at the last good record; it
// never fails and never allocates more than maxWALPayload per entry.
func replayWAL(src io.Reader) ([]walEntry, uint64, error) {
	r := bufio.NewReader(src)
	byID := make(map[uint64][]byte)
	var order []uint64
	var nextID uint64

	for {
		kind, err := r.ReadByte()
		if err != nil {
			break // clean EOF or torn tail: stop replay
		}
		id, err := binary.ReadUvarint(r)
		if err != nil {
			break
		}
		switch kind {
		case recEnqueue:
			n, err := binary.ReadUvarint(r)
			if err != nil || n > maxWALPayload {
				goto done
			}
			msg := make([]byte, n)
			if _, err := io.ReadFull(r, msg); err != nil {
				goto done
			}
			if _, dup := byID[id]; !dup {
				byID[id] = msg
				order = append(order, id)
			}
			if id >= nextID {
				nextID = id + 1
			}
		case recDone:
			delete(byID, id)
		default:
			goto done // unknown record: treat as torn tail
		}
	}
done:
	var entries []walEntry
	for _, id := range order {
		if msg, ok := byID[id]; ok {
			entries = append(entries, walEntry{id: id, msg: msg})
		}
	}
	return entries, nextID, nil
}

func writeRecord(w io.Writer, kind byte, id uint64, msg []byte) error {
	var hdr [1 + 2*binary.MaxVarintLen64]byte
	hdr[0] = kind
	n := 1 + binary.PutUvarint(hdr[1:], id)
	if kind == recEnqueue {
		n += binary.PutUvarint(hdr[n:], uint64(len(msg)))
	}
	if _, err := w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("outbox: wal write: %w", err)
	}
	if kind == recEnqueue {
		if _, err := w.Write(msg); err != nil {
			return fmt.Errorf("outbox: wal write: %w", err)
		}
	}
	return nil
}

// appendEnqueue logs a new message. The record always reaches the kernel
// (Flush) before Enqueue returns, so it survives a process crash; with
// l.sync it is also fsynced to the device, surviving power loss, at the
// cost of one fsync per enqueue.
func (l *wal) appendEnqueue(id uint64, msg []byte) error {
	if err := writeRecord(l.w, recEnqueue, id, msg); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("outbox: wal flush: %w", err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("outbox: wal sync: %w", err)
		}
	}
	return nil
}

// appendDone logs completion; durability is best-effort (losing a done
// record only risks a resend, which the semantics already allow).
func (l *wal) appendDone(id uint64) error {
	if err := writeRecord(l.w, recDone, id, nil); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("outbox: wal flush: %w", err)
	}
	return nil
}

func (l *wal) close() error {
	if l == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

var errClosed = errors.New("outbox: closed")
