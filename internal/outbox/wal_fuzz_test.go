package outbox

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// record serializes one WAL record for seeding and cross-checking.
func record(t testing.TB, kind byte, id uint64, msg []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeRecord(&buf, kind, id, msg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzWALReplay throws mutated and truncated log bytes at replayWAL. The
// invariants — what "always recovers a consistent prefix" means:
//
//   - replay never panics and never fails (a torn tail is normal, not an
//     error);
//   - no recovered entry exceeds maxWALPayload (a corrupt length prefix
//     must not drive allocation);
//   - ids are unique and nextID clears every one of them;
//   - the recovered backlog is self-consistent: re-serializing it and
//     replaying that yields the identical backlog (replay is a
//     projection — applying it twice changes nothing).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(record(f, recEnqueue, 0, []byte("hello")))
	f.Add(append(
		record(f, recEnqueue, 1, []byte("a")),
		record(f, recDone, 1, nil)...))
	f.Add(append(
		record(f, recEnqueue, 2, bytes.Repeat([]byte("x"), 300)),
		record(f, recEnqueue, 3, []byte("tail"))...))
	// Oversized length prefix: must stop replay, not allocate.
	over := []byte{recEnqueue, 7}
	var n [binary.MaxVarintLen64]byte
	over = append(over, n[:binary.PutUvarint(n[:], maxWALPayload+1)]...)
	f.Add(over)
	// Truncated payload (header promises 100 bytes, delivers 3).
	torn := []byte{recEnqueue, 9, 100, 'a', 'b', 'c'}
	f.Add(torn)
	// Unknown record kind, then a record that must not be reached.
	f.Add(append([]byte{0xEE, 1}, record(f, recEnqueue, 4, []byte("after"))...))
	f.Add([]byte{recDone}) // id varint missing entirely
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, nextID, err := replayWAL(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("replay failed on arbitrary bytes: %v", err)
		}
		seen := make(map[uint64]bool, len(entries))
		var reser bytes.Buffer
		for _, e := range entries {
			if len(e.msg) > maxWALPayload {
				t.Fatalf("entry %d over-allocated: %d bytes", e.id, len(e.msg))
			}
			if seen[e.id] {
				t.Fatalf("duplicate id %d in recovered backlog", e.id)
			}
			seen[e.id] = true
			if e.id >= nextID {
				t.Fatalf("nextID %d does not clear recovered id %d", nextID, e.id)
			}
			if err := writeRecord(&reser, recEnqueue, e.id, e.msg); err != nil {
				t.Fatal(err)
			}
		}

		again, nextID2, err := replayWAL(bytes.NewReader(reser.Bytes()))
		if err != nil {
			t.Fatalf("re-replay failed: %v", err)
		}
		if len(again) != len(entries) {
			t.Fatalf("re-replay recovered %d entries, want %d", len(again), len(entries))
		}
		for i := range entries {
			if again[i].id != entries[i].id || !bytes.Equal(again[i].msg, entries[i].msg) {
				t.Fatalf("entry %d diverged on re-replay: %v vs %v", i, again[i], entries[i])
			}
		}
		if len(entries) > 0 && nextID2 > nextID {
			t.Fatalf("re-replay nextID grew: %d > %d", nextID2, nextID)
		}
	})
}

func TestReplayStopsAtTornTailKeepingPrefix(t *testing.T) {
	var log bytes.Buffer
	log.Write(record(t, recEnqueue, 0, []byte("first")))
	log.Write(record(t, recEnqueue, 1, []byte("second")))
	log.Write(record(t, recDone, 0, nil))
	full := record(t, recEnqueue, 2, []byte("third-to-be-torn"))
	log.Write(full[:len(full)-4]) // crash mid-payload

	entries, nextID, err := replayWAL(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].id != 1 || string(entries[0].msg) != "second" {
		t.Fatalf("recovered backlog %v, want just id 1", entries)
	}
	if nextID != 2 {
		t.Fatalf("nextID = %d, want 2 (torn record must not count)", nextID)
	}
}
