package relay

import (
	"encoding/binary"
	"fmt"
)

// Frame kinds. Data frames carry a payload from Src toward Dst along
// Route; ack frames confirm one (Src, ID) end to end, travelling the
// reversed route back to the original source.
const (
	frameData byte = 1
	frameAck  byte = 2
)

// maxRouteLen bounds the hop count a frame may carry; routes are node
// paths inside one mesh, so a byte is plenty.
const maxRouteLen = 255

// frame is one mesh-layer envelope. Every hop transfers the encoded
// frame as an opaque session payload; only relay nodes look inside.
//
// Wire layout (all integers uvarint unless noted):
//
//	kind(1B) | src(1B) | dst(1B) | id | attempt | routeLen(1B) | route... | payload
//
// Route is the full node path source..destination (never popped), so the
// destination can reverse it for the ack and any node can locate its
// successor without per-node state.
type frame struct {
	Kind    byte
	Src     byte
	Dst     byte
	ID      uint64
	Attempt uint32
	Route   []byte
	Payload []byte
}

// key identifies one end-to-end transfer attempt; per-hop forwarding
// dedup keys on it so a session-level resubmission (the same attempt
// delivered twice by one hop) is suppressed while a deliberate
// re-dispatch (a new attempt, possibly over a route sharing this node)
// still propagates.
type key struct {
	kind    byte
	src     byte
	dst     byte
	id      uint64
	attempt uint32
}

func (f frame) key() key {
	return key{kind: f.Kind, src: f.Src, dst: f.Dst, id: f.ID, attempt: f.Attempt}
}

// endKey identifies one end-to-end payload regardless of attempt; the
// destination dedups on it for exactly-once delivery.
type endKey struct {
	src byte
	id  uint64
}

func (f frame) endKey() endKey { return endKey{src: f.Src, id: f.ID} }

// appendFrame encodes f onto b append-style.
func appendFrame(b []byte, f frame) []byte {
	b = append(b, f.Kind, f.Src, f.Dst)
	b = binary.AppendUvarint(b, f.ID)
	b = binary.AppendUvarint(b, uint64(f.Attempt))
	b = append(b, byte(len(f.Route)))
	b = append(b, f.Route...)
	b = append(b, f.Payload...)
	return b
}

// parseFrame decodes one frame. The returned Route and Payload alias p.
func parseFrame(p []byte) (frame, error) {
	var f frame
	if len(p) < 3 {
		return f, fmt.Errorf("relay: frame too short (%d bytes)", len(p))
	}
	f.Kind, f.Src, f.Dst = p[0], p[1], p[2]
	if f.Kind != frameData && f.Kind != frameAck {
		return f, fmt.Errorf("relay: unknown frame kind %d", f.Kind)
	}
	rest := p[3:]
	id, n := binary.Uvarint(rest)
	if n <= 0 {
		return f, fmt.Errorf("relay: truncated frame id")
	}
	rest = rest[n:]
	attempt, n := binary.Uvarint(rest)
	if n <= 0 || attempt > 1<<32-1 {
		return f, fmt.Errorf("relay: bad frame attempt")
	}
	rest = rest[n:]
	if len(rest) < 1 {
		return f, fmt.Errorf("relay: truncated route length")
	}
	rl := int(rest[0])
	rest = rest[1:]
	if len(rest) < rl {
		return f, fmt.Errorf("relay: truncated route (%d of %d hops)", len(rest), rl)
	}
	f.ID = id
	f.Attempt = uint32(attempt)
	f.Route = rest[:rl]
	f.Payload = rest[rl:]
	return f, nil
}
