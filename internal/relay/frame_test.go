package relay

import (
	"bytes"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	in := frame{
		Kind:    frameData,
		Src:     0,
		Dst:     4,
		ID:      1<<40 + 17,
		Attempt: 3,
		Route:   []byte{0, 2, 4},
		Payload: []byte("relay payload"),
	}
	enc := appendFrame(nil, in)
	out, err := parseFrame(enc)
	if err != nil {
		t.Fatalf("parseFrame: %v", err)
	}
	if out.Kind != in.Kind || out.Src != in.Src || out.Dst != in.Dst ||
		out.ID != in.ID || out.Attempt != in.Attempt {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if !bytes.Equal(out.Route, in.Route) || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("route/payload mismatch: %+v vs %+v", out, in)
	}
}

func TestFrameEmptyPayloadAndRoute(t *testing.T) {
	enc := appendFrame(nil, frame{Kind: frameAck, Src: 1, Dst: 0, ID: 9})
	out, err := parseFrame(enc)
	if err != nil {
		t.Fatalf("parseFrame: %v", err)
	}
	if len(out.Route) != 0 || len(out.Payload) != 0 {
		t.Fatalf("expected empty route and payload, got %+v", out)
	}
}

func TestFrameParseErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{frameData},
		{frameData, 0, 1},          // missing id
		{42, 0, 1, 1, 1, 0},        // unknown kind
		{frameData, 0, 1, 1, 1, 5}, // route length overruns
		{frameData, 0, 1, 0x80},    // truncated uvarint id
		{frameData, 0, 1, 1, 0x80}, // truncated uvarint attempt
	}
	for i, c := range cases {
		if _, err := parseFrame(c); err == nil {
			t.Errorf("case %d: expected error for % x", i, c)
		}
	}
}

func TestFrameKeys(t *testing.T) {
	f := frame{Kind: frameData, Src: 0, Dst: 4, ID: 7, Attempt: 1}
	resub := f // same attempt redelivered by a hop: same key
	if f.key() != resub.key() {
		t.Fatal("identical frames must share a hop key")
	}
	redispatch := f
	redispatch.Attempt = 2 // deliberate re-dispatch: new key, same endKey
	if f.key() == redispatch.key() {
		t.Fatal("a re-dispatch must get a fresh hop key")
	}
	if f.endKey() != redispatch.endKey() {
		t.Fatal("re-dispatch must keep the end-to-end key")
	}
	ack := f
	ack.Kind = frameAck // acks dedup separately from data
	if f.key() == ack.key() {
		t.Fatal("ack and data frames must not share a hop key")
	}
}
