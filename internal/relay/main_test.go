package relay

import (
	"testing"

	"ghm/internal/testutil"
)

// TestMain wires the goroutine-leak guard over the whole relay suite: a
// mesh owns many sessions, receivers and engines, and every one of them
// must be gone when a test closes its mesh.
func TestMain(m *testing.M) { testutil.Main(m) }
