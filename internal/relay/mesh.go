package relay

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ghm/internal/clock"
	"ghm/internal/core"
	"ghm/internal/engine"
	"ghm/internal/metrics"
	"ghm/internal/netlink"
	"ghm/internal/supervise"
	"ghm/internal/verify"
)

// ErrClosed reports use of a closed Mesh.
var ErrClosed = errors.New("relay: mesh closed")

// The relay.* metric family, declared constants per the metricname
// invariant.
const (
	mRelayHops          = "relay.hops"           // frames forwarded by intermediate nodes
	mRelayDelivered     = "relay.delivered"      // distinct payloads delivered at the destination
	mRelayDupSuppressed = "relay.dup_suppressed" // duplicates suppressed (per-hop and end-to-end)
	mRelayReroutes      = "relay.reroutes"       // health- or timeout-driven re-dispatches
	mRelayAcks          = "relay.acks"           // end-to-end acks received back at the source
	mRelayDropped       = "relay.dropped"        // frames dropped (decode/route errors, dying hops)
	mRelayParked        = "relay.parked"         // gauge: payloads parked with no usable route
	mRelayRoutesUsable  = "relay.routes_usable"  // gauge: routes with every hop healthy
	mRelayNodeRestarts  = "relay.node_restarts"  // relay-node incarnations rebuilt
)

// relayMetrics is the registry hookup for the relay.* family.
type relayMetrics struct {
	hops          *metrics.Counter
	delivered     *metrics.Counter
	dupSuppressed *metrics.Counter
	reroutes      *metrics.Counter
	acks          *metrics.Counter
	dropped       *metrics.Counter
	parked        *metrics.Gauge
	routesUsable  *metrics.Gauge
	nodeRestarts  *metrics.Counter
}

func newRelayMetrics(r *metrics.Registry) relayMetrics {
	return relayMetrics{
		hops:          r.Counter(mRelayHops),
		delivered:     r.Counter(mRelayDelivered),
		dupSuppressed: r.Counter(mRelayDupSuppressed),
		reroutes:      r.Counter(mRelayReroutes),
		acks:          r.Counter(mRelayAcks),
		dropped:       r.Counter(mRelayDropped),
		parked:        r.Gauge(mRelayParked),
		routesUsable:  r.Gauge(mRelayRoutesUsable),
		nodeRestarts:  r.Counter(mRelayNodeRestarts),
	}
}

// LinkConns is the pair of PacketConn halves realizing one topology
// link; A belongs to Link.A's node, B to Link.B's. The mesh owns both:
// Mesh.Close closes them.
type LinkConns struct {
	A, B netlink.PacketConn
}

// Config parameterizes a Mesh. Topology, Links, Source and Dest are
// required; everything else defaults sanely.
type Config struct {
	// Topology is the relay graph; Links realizes it, one conn pair per
	// topology link, in the same order.
	Topology Topology
	Links    []LinkConns
	// Source and Dest are the end-to-end endpoints: Submit injects at
	// Source, Delivered drains at Dest.
	Source, Dest int
	// Routes is how many link-disjoint routes to disperse over (default
	// 2, clamped to what the topology offers; at least one must exist).
	Routes int

	// Epsilon is the per-hop per-message error probability (0 = protocol
	// default).
	Epsilon float64
	// RetryInterval / RetryBackoffMax pace each hop's receiver (defaults
	// 300µs / 32ms — in-process scale; raise them for real networks).
	RetryInterval   time.Duration
	RetryBackoffMax time.Duration
	// WatchdogWindow is each hop session's no-progress window (default
	// 250ms); Degraded/Partitioned/Down transitions drive failover.
	WatchdogWindow time.Duration
	// RestartBackoff / RestartBackoffMax bound hop-session rebuild
	// pacing (defaults 5ms / 80ms).
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
	// BreakerThreshold / BreakerCooldown configure each hop's restart
	// breaker (defaults 25 / 250ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// AckTimeout is the end-to-end re-dispatch backstop: a payload whose
	// ack has not returned within it is re-dispatched (default 1s). This
	// is what survives a relay-node crash that swallowed a frame between
	// hop delivery and next-hop enqueue.
	AckTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per payload (0 = unlimited);
	// exhausting it is a sticky fatal error, like an outbox giving up.
	MaxAttempts int
	// WALDir, when set, gives every directed hop a forwarding WAL so a
	// restarted node resubmits the frames its previous incarnation had
	// accepted but not yet pushed onward.
	WALDir string
	// DeliveryBuffer is the Delivered channel capacity (default 256).
	DeliveryBuffer int

	// Seed fixes hop-session jitter for reproducible tests (0 = clock).
	Seed int64
	// Clock is the mesh's time source: ack deadlines, hop supervisors
	// and every engine's wheel ride it (nil = wall clock via the shared
	// default wheel).
	Clock clock.Clock
	// Metrics receives the relay.* family plus every hop's session.*,
	// tx.*, rx.* and link.* counters; nil uses metrics.Default().
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Routes <= 0 {
		c.Routes = 2
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 300 * time.Microsecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 32 * time.Millisecond
	}
	if c.WatchdogWindow <= 0 {
		c.WatchdogWindow = 250 * time.Millisecond
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 5 * time.Millisecond
	}
	if c.RestartBackoffMax <= 0 {
		c.RestartBackoffMax = 80 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 25
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 250 * time.Millisecond
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = time.Second
	}
	if c.DeliveryBuffer <= 0 {
		c.DeliveryBuffer = 256
	}
	return c
}

// meshWheel picks the mesh's timer wheel: the process-wide default on
// the wall clock, or a wheel riding the injected clock (costless for a
// virtual clock — virtual wheels have no goroutine).
func meshWheel(clk clock.Clock) *engine.Wheel {
	if clk == nil {
		return engine.DefaultWheel()
	}
	return engine.NewWheelOn(clk, 0, 0)
}

// hopID names a directed hop.
type hopID struct {
	From, To int
}

// String renders "0->1" for reports and logs.
func (h hopID) String() string { return fmt.Sprintf("%d->%d", h.From, h.To) }

// hop is one directed hop's permanent identity: its link and its live
// conformance checker, shared across node incarnations (exactly as the
// supervised soak shares one checker across station incarnations).
type hop struct {
	id   hopID
	link int
	live *verify.Live
}

// entry is one in-flight end-to-end payload at the source router.
type entry struct {
	id       uint64
	payload  []byte
	attempt  uint32
	routeIdx int
	deadline time.Time
	parked   bool
}

// Stats snapshots a Mesh's counters.
type Stats struct {
	Submitted     int   // payloads accepted at the source
	Acked         int   // payloads confirmed end-to-end
	Pending       int   // submitted but not yet acked
	Parked        int   // pending with no usable route right now
	Delivered     int64 // distinct payloads handed to the destination's higher layer
	Hops          int64 // frames forwarded by intermediate nodes
	Reroutes      int64 // re-dispatches (health-driven failover + ack timeouts)
	DupSuppressed int64 // duplicates suppressed per hop and at the destination
	NodeRestarts  int64 // node incarnations rebuilt
	RoutesUsable  int   // routes currently fully healthy
	Routes        int   // link-disjoint routes the mesh dispersed over
}

// Mesh is a multi-hop relay network: every edge a supervised session per
// direction, source routing over link-disjoint routes, per-hop dedup,
// end-to-end acks and health-driven failover. See the package comment
// for the guarantee layering. Create with New; always Close.
type Mesh struct {
	cfg    Config
	reg    *metrics.Registry
	mt     relayMetrics
	topo   Topology
	routes [][]int
	wheel  *engine.Wheel

	engines []*engine.Engine // one per conn half, mesh-owned
	nodes   []*node
	hops    map[hopID]*hop

	deliveredCh chan []byte

	mu           sync.Mutex
	cond         *sync.Cond
	inflight     map[uint64]*entry
	deliveredSet map[endKey]bool
	hopHealth    map[hopID]supervise.Health
	nodeUp       []bool
	nextID       uint64
	rr           int // round-robin route cursor
	parked       int
	err          error // sticky fatal (MaxAttempts exhausted)
	closed       bool

	st struct {
		submitted, acked                atomic.Int64
		delivered, hops, dups, reroutes atomic.Int64
		nodeRestarts                    atomic.Int64
	}

	wake       chan struct{}
	stop       chan struct{}
	routerDone chan struct{}
	timer      *engine.Timer
	closeOnce  sync.Once
}

// New validates the topology, computes the link-disjoint routes, builds
// every node's engines, sessions and receivers, and starts the router.
func New(cfg Config) (*Mesh, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Links) != len(cfg.Topology.Links) {
		return nil, fmt.Errorf("relay: %d conn pairs for %d topology links", len(cfg.Links), len(cfg.Topology.Links))
	}
	if cfg.Source < 0 || cfg.Source >= cfg.Topology.Nodes || cfg.Dest < 0 || cfg.Dest >= cfg.Topology.Nodes {
		return nil, fmt.Errorf("relay: source %d / dest %d out of range [0, %d)", cfg.Source, cfg.Dest, cfg.Topology.Nodes)
	}
	if cfg.Source == cfg.Dest {
		return nil, fmt.Errorf("relay: source and dest are both node %d", cfg.Source)
	}
	routes := cfg.Topology.DisjointRoutes(cfg.Source, cfg.Dest, cfg.Routes)
	if len(routes) == 0 {
		return nil, fmt.Errorf("relay: no route from %d to %d", cfg.Source, cfg.Dest)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default()
	}

	m := &Mesh{
		cfg:          cfg,
		reg:          reg,
		mt:           newRelayMetrics(reg),
		topo:         cfg.Topology,
		routes:       routes,
		wheel:        meshWheel(cfg.Clock),
		hops:         make(map[hopID]*hop),
		deliveredCh:  make(chan []byte, cfg.DeliveryBuffer),
		inflight:     make(map[uint64]*entry),
		deliveredSet: make(map[endKey]bool),
		hopHealth:    make(map[hopID]supervise.Health),
		nodeUp:       make([]bool, cfg.Topology.Nodes),
		wake:         make(chan struct{}, 1),
		stop:         make(chan struct{}),
		routerDone:   make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)

	// Permanent per-node link ends: one framed engine per conn half, two
	// directional endpoints per link. Endpoint id 0 always carries
	// Link.A -> Link.B, id 1 the reverse, so both sides agree on the
	// wire tags.
	nodes := make([]*node, cfg.Topology.Nodes)
	for i := range nodes {
		nodes[i] = &node{m: m, id: i}
	}
	for li, l := range cfg.Topology.Links {
		engA := netlink.NewEngineOn(cfg.Links[li].A, 2, reg, m.wheel)
		engB := netlink.NewEngineOn(cfg.Links[li].B, 2, reg, m.wheel)
		m.engines = append(m.engines, engA, engB)
		nodes[l.A].ends = append(nodes[l.A].ends, nodeEnd{link: li, peer: l.B, eng: engA, sendID: 0, recvID: 1})
		nodes[l.B].ends = append(nodes[l.B].ends, nodeEnd{link: li, peer: l.A, eng: engB, sendID: 1, recvID: 0})
		m.hops[hopID{From: l.A, To: l.B}] = &hop{id: hopID{From: l.A, To: l.B}, link: li, live: &verify.Live{}}
		m.hops[hopID{From: l.B, To: l.A}] = &hop{id: hopID{From: l.B, To: l.A}, link: li, live: &verify.Live{}}
	}
	m.nodes = nodes

	for _, n := range nodes {
		if err := n.start(); err != nil {
			for _, p := range nodes {
				p.stop()
			}
			for _, e := range m.engines {
				e.Close()
			}
			return nil, err
		}
		m.mu.Lock()
		m.nodeUp[n.id] = true
		m.mu.Unlock()
	}

	m.timer = m.wheel.AfterFunc(time.Hour, m.signal)
	m.timer.Stop()
	go m.router()
	m.signal()
	return m, nil
}

// params builds the per-hop protocol parameters.
func (m *Mesh) params() core.Params { return core.Params{Epsilon: m.cfg.Epsilon} }

// hopSeed derives a deterministic per-hop supervisor seed (0 stays 0:
// clock-seeded).
func (m *Mesh) hopSeed(nodeID, endIdx int) int64 {
	if m.cfg.Seed == 0 {
		return 0
	}
	return m.cfg.Seed + int64(nodeID)*64 + int64(endIdx) + 1
}

// signal wakes the router; safe from wheel callbacks (never blocks).
func (m *Mesh) signal() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// addHop / addDup track mesh-local counters alongside the shared
// registry (a registry may serve several meshes).
func (m *Mesh) addHop() { m.st.hops.Add(1) }
func (m *Mesh) addDup() { m.st.dups.Add(1) }

// noteHopHealth records a hop transition and wakes the router: a
// worsened hop triggers failover of in-flight payloads routed over it, a
// recovered hop resumes parked ones.
func (m *Mesh) noteHopHealth(h hopID, to supervise.Health) {
	m.mu.Lock()
	m.hopHealth[h] = to
	m.mu.Unlock()
	m.signal()
}

// HopHealth returns the mesh's current view of a directed hop (Healthy
// for unknown hops).
func (m *Mesh) HopHealth(from, to int) supervise.Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hopHealth[hopID{From: from, To: to}]
}

// Routes returns the link-disjoint node paths the mesh disperses over.
func (m *Mesh) Routes() [][]int {
	out := make([][]int, len(m.routes))
	for i, r := range m.routes {
		out[i] = append([]int(nil), r...)
	}
	return out
}

// HopReports returns every directed hop's live Section-2.6 conformance
// report, keyed "from->to".
func (m *Mesh) HopReports() map[string]verify.Report {
	out := make(map[string]verify.Report, len(m.hops))
	for id, h := range m.hops {
		out[id.String()] = h.live.Report()
	}
	return out
}

// Delivered is the destination's higher layer: distinct payloads, each
// exactly once, in arrival order. The channel is closed by Close.
func (m *Mesh) Delivered() <-chan []byte { return m.deliveredCh }

// Submit accepts a payload at the source for end-to-end delivery and
// returns its mesh id. The payload is dispatched immediately over the
// healthiest route, or parked if no route is usable right now.
func (m *Mesh) Submit(payload []byte) (uint64, error) {
	cp := append([]byte(nil), payload...)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	if m.err != nil {
		return 0, m.err
	}
	id := m.nextID
	m.nextID++
	e := &entry{id: id, payload: cp}
	m.inflight[id] = e
	m.st.submitted.Add(1)
	m.dispatchLocked(e, m.wheel.Clock().Now())
	m.signal() // re-arm the ack-timeout timer around the new entry
	return id, nil
}

// usableLocked reports whether route r is fully usable: every node on it
// up, every hop session Healthy.
func (m *Mesh) usableLocked(r []int) bool {
	for _, n := range r {
		if !m.nodeUp[n] {
			return false
		}
	}
	for i := 0; i+1 < len(r); i++ {
		if m.hopHealth[hopID{From: r[i], To: r[i+1]}] != supervise.Healthy {
			return false
		}
	}
	return true
}

// usableRoutesLocked lists the indexes of currently usable routes.
func (m *Mesh) usableRoutesLocked() []int {
	var out []int
	for i, r := range m.routes {
		if m.usableLocked(r) {
			out = append(out, i)
		}
	}
	return out
}

// dispatchLocked sends (or re-sends) one entry over the next usable
// route, or parks it when none is usable. Caller holds m.mu.
func (m *Mesh) dispatchLocked(e *entry, now time.Time) {
	usable := m.usableRoutesLocked()
	m.mt.routesUsable.Set(float64(len(usable)))
	if len(usable) == 0 {
		m.parkLocked(e)
		return
	}
	if m.cfg.MaxAttempts > 0 && int(e.attempt) >= m.cfg.MaxAttempts {
		m.err = fmt.Errorf("relay: payload %d exhausted %d dispatch attempts", e.id, m.cfg.MaxAttempts)
		delete(m.inflight, e.id)
		if e.parked {
			e.parked = false
			m.parked--
			m.mt.parked.Set(float64(m.parked))
		}
		m.cond.Broadcast()
		return
	}

	idx := usable[m.rr%len(usable)]
	m.rr++
	e.attempt++
	e.routeIdx = idx
	e.deadline = now.Add(m.cfg.AckTimeout)
	if e.parked {
		e.parked = false
		m.parked--
		m.mt.parked.Set(float64(m.parked))
	}

	route := m.routes[idx]
	rb := make([]byte, len(route))
	for i, n := range route {
		rb[i] = byte(n)
	}
	f := frame{
		Kind:    frameData,
		Src:     byte(m.cfg.Source),
		Dst:     byte(m.cfg.Dest),
		ID:      e.id,
		Attempt: e.attempt,
		Route:   rb,
		Payload: e.payload,
	}
	sess := m.nodes[m.cfg.Source].sessionTo(route[1])
	if sess == nil {
		m.parkLocked(e)
		return
	}
	if _, err := sess.Enqueue(appendFrame(nil, f)); err != nil {
		m.parkLocked(e)
		return
	}
}

// parkLocked parks an entry until some route recovers.
func (m *Mesh) parkLocked(e *entry) {
	if !e.parked {
		e.parked = true
		m.parked++
		m.mt.parked.Set(float64(m.parked))
	}
	e.deadline = time.Time{}
}

// completeAck resolves one end-to-end ack at the source.
func (m *Mesh) completeAck(id uint64) {
	m.mu.Lock()
	e, ok := m.inflight[id]
	if ok {
		delete(m.inflight, id)
		if e.parked {
			e.parked = false
			m.parked--
			m.mt.parked.Set(float64(m.parked))
		}
		m.st.acked.Add(1)
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	if ok {
		m.signal()
	}
}

// deliverLocal commits one data frame at the destination: end-to-end
// dedup, ack back over the reversed route (re-acking duplicates, so a
// lost ack is healed by the next re-dispatch), then hand the payload to
// the higher layer.
func (m *Mesh) deliverLocal(n *node, f frame) {
	m.mu.Lock()
	ek := f.endKey()
	first := !m.deliveredSet[ek]
	if first {
		m.deliveredSet[ek] = true
	}
	m.mu.Unlock()

	ack := frame{
		Kind:    frameAck,
		Src:     f.Dst,
		Dst:     f.Src,
		ID:      f.ID,
		Attempt: f.Attempt,
		Route:   reverseRoute(f.Route),
	}
	if next, ok := nextHop(ack.Route, n.id); ok {
		if sess := n.sessionTo(next); sess != nil {
			if _, err := sess.Enqueue(appendFrame(nil, ack)); err != nil {
				m.mt.dropped.Inc()
			}
		}
	}

	if !first {
		m.mt.dupSuppressed.Inc()
		m.addDup()
		return
	}
	m.mt.delivered.Inc()
	m.st.delivered.Add(1)
	payload := append([]byte(nil), f.Payload...)
	select {
	case m.deliveredCh <- payload:
	case <-m.stop:
	}
}

// router is the failover loop: on every wake — a health transition, an
// ack, a submit, a node stop/restart or an ack-timeout firing — it
// reconciles the in-flight table against route health, re-dispatching
// entries whose route worsened or whose ack is overdue and resuming
// parked ones, then re-arms the timeout timer.
func (m *Mesh) router() {
	defer close(m.routerDone)
	for {
		select {
		case <-m.stop:
			return
		case <-m.wake:
		}
		m.reconcile()
	}
}

// reconcile is one router pass; see router.
func (m *Mesh) reconcile() {
	now := m.wheel.Clock().Now()
	m.mu.Lock()
	m.mt.routesUsable.Set(float64(len(m.usableRoutesLocked())))
	var earliest time.Time
	for _, e := range m.inflight {
		if m.err != nil {
			break
		}
		switch {
		case e.parked:
			m.dispatchLocked(e, now) // parks again if still no route
		case !m.usableLocked(m.routes[e.routeIdx]) || !now.Before(e.deadline):
			// Health-driven failover or ack-timeout backstop.
			m.mt.reroutes.Inc()
			m.st.reroutes.Add(1)
			m.dispatchLocked(e, now)
		}
		if !e.parked && !e.deadline.IsZero() && (earliest.IsZero() || e.deadline.Before(earliest)) {
			earliest = e.deadline
		}
	}
	m.mu.Unlock()
	if !earliest.IsZero() {
		d := time.Until(earliest)
		if d < time.Millisecond {
			d = time.Millisecond
		}
		m.timer.Reset(d)
	}
}

// StopNode crashes a relay node: its sessions, receivers and in-memory
// forwarding state are torn down (the links stay up). In-flight payloads
// routed through it fail over to surviving routes; with no surviving
// route they park until RestartNode.
func (m *Mesh) StopNode(id int) error {
	if id < 0 || id >= len(m.nodes) {
		return fmt.Errorf("relay: node %d out of range [0, %d)", id, len(m.nodes))
	}
	m.mu.Lock()
	m.nodeUp[id] = false
	for _, end := range m.nodes[id].ends {
		m.hopHealth[hopID{From: id, To: end.peer}] = supervise.Down
	}
	m.mu.Unlock()
	m.nodes[id].stop()
	m.signal()
	return nil
}

// RestartNode rebuilds a crashed node: fresh sessions (replaying their
// forwarding WALs, when configured) and receivers. Parked payloads
// resume as soon as the restored routes report healthy.
func (m *Mesh) RestartNode(id int) error {
	if id < 0 || id >= len(m.nodes) {
		return fmt.Errorf("relay: node %d out of range [0, %d)", id, len(m.nodes))
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	up := m.nodeUp[id]
	m.mu.Unlock()
	if up {
		return fmt.Errorf("relay: node %d is already running", id)
	}
	if err := m.nodes[id].start(); err != nil {
		return err
	}
	m.mu.Lock()
	m.nodeUp[id] = true
	m.mu.Unlock()
	m.mt.nodeRestarts.Inc()
	m.st.nodeRestarts.Add(1)
	m.signal()
	return nil
}

// NodeUp reports whether node id is currently running.
func (m *Mesh) NodeUp(id int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return id >= 0 && id < len(m.nodeUp) && m.nodeUp[id]
}

// Flush blocks until every submitted payload is acked end-to-end, the
// mesh fails fatally, or ctx ends. Node crashes and hop failures are not
// fatal: Flush rides through them.
func (m *Mesh) Flush(ctx context.Context) error {
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-ctx.Done():
			m.cond.Broadcast()
		case <-stopWatch:
		}
	}()

	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.inflight) > 0 && m.err == nil && !m.closed {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		m.cond.Wait()
	}
	if m.err != nil {
		return m.err
	}
	if m.closed && len(m.inflight) > 0 {
		return ErrClosed
	}
	return ctx.Err()
}

// Err returns the mesh's sticky fatal error, if any.
func (m *Mesh) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Stats snapshots the mesh's counters.
func (m *Mesh) Stats() Stats {
	m.mu.Lock()
	pending := len(m.inflight)
	parked := m.parked
	usable := len(m.usableRoutesLocked())
	m.mu.Unlock()
	return Stats{
		Submitted:     int(m.st.submitted.Load()),
		Acked:         int(m.st.acked.Load()),
		Pending:       pending,
		Parked:        parked,
		Delivered:     m.st.delivered.Load(),
		Hops:          m.st.hops.Load(),
		Reroutes:      m.st.reroutes.Load(),
		DupSuppressed: m.st.dups.Load(),
		NodeRestarts:  m.st.nodeRestarts.Load(),
		RoutesUsable:  usable,
		Routes:        len(m.routes),
	}
}

// Close stops the mesh: the router, every node's runtime, every engine
// (closing the underlying conns) and the Delivered channel.
func (m *Mesh) Close() error {
	m.closeOnce.Do(func() {
		close(m.stop)
		<-m.routerDone
		m.timer.Stop()
		for _, n := range m.nodes {
			n.stop()
		}
		for _, e := range m.engines {
			e.Close()
		}
		m.mu.Lock()
		m.closed = true
		m.cond.Broadcast()
		m.mu.Unlock()
		close(m.deliveredCh)
	})
	return nil
}
