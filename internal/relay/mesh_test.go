package relay

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ghm/internal/metrics"
	"ghm/internal/netlink"
)

// testLinks realizes a topology in-process: one reordering pipe per
// link, both halves wrapped in controllable impairment stages.
type testLinks struct {
	conns []LinkConns
	// imps[i] are link i's two impairment stages: [0] wraps the A half,
	// [1] the B half.
	imps [][2]*netlink.ImpairedConn
}

func buildLinks(topo Topology, seed int64, reg *metrics.Registry, spec netlink.ImpairConfig) testLinks {
	return buildLinksPer(topo, seed, reg, func(int) netlink.ImpairConfig { return spec })
}

// buildLinksPer is buildLinks with a per-link impairment profile.
func buildLinksPer(topo Topology, seed int64, reg *metrics.Registry, specFor func(li int) netlink.ImpairConfig) testLinks {
	var tl testLinks
	for i := range topo.Links {
		a, b := netlink.Pipe(netlink.PipeConfig{Seed: seed + int64(3*i) + 1})
		spec := specFor(i)
		ica, icb := spec, spec
		ica.Seed, icb.Seed = seed+int64(3*i)+2, seed+int64(3*i)+3
		ica.Metrics, icb.Metrics = reg, reg
		ica.MetricsPrefix, icb.MetricsPrefix = "link", "link"
		la, lb := netlink.Impair(a, ica), netlink.Impair(b, icb)
		tl.conns = append(tl.conns, LinkConns{A: la, B: lb})
		tl.imps = append(tl.imps, [2]*netlink.ImpairedConn{la, lb})
	}
	return tl
}

// drain consumes a mesh's Delivered channel into a payload->count map
// until the channel closes.
func drain(m *Mesh) (*sync.Mutex, map[string]int, chan struct{}) {
	var mu sync.Mutex
	got := map[string]int{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p := range m.Delivered() {
			mu.Lock()
			got[string(p)]++
			mu.Unlock()
		}
	}()
	return &mu, got, done
}

func requireExactlyOnce(t *testing.T, mu *sync.Mutex, got map[string]int, want []string) {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()
	for _, w := range want {
		switch got[w] {
		case 1:
		case 0:
			t.Errorf("payload %q never delivered", w)
		default:
			t.Errorf("payload %q delivered %d times", w, got[w])
		}
	}
	if len(got) != len(want) {
		t.Errorf("delivered %d distinct payloads, want %d", len(got), len(want))
	}
}

func requireCleanHops(t *testing.T, m *Mesh) {
	t.Helper()
	for id, rep := range m.HopReports() {
		if !rep.Clean() {
			t.Errorf("hop %s conformance violations: %v", id, rep)
		}
	}
}

func newTestMesh(t *testing.T, cfg Config) *Mesh {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestMeshDelivery(t *testing.T) {
	reg := metrics.New()
	topo := fiveNode()
	tl := buildLinks(topo, 101, reg, netlink.ImpairConfig{})
	m := newTestMesh(t, Config{
		Topology: topo, Links: tl.conns,
		Source: 0, Dest: 4, Routes: 3,
		Seed: 101, Metrics: reg,
	})
	if got := len(m.Routes()); got != 3 {
		t.Fatalf("expected 3 routes, got %d", got)
	}

	mu, got, done := drain(m)
	var want []string
	for i := 0; i < 50; i++ {
		p := fmt.Sprintf("msg-%03d", i)
		if _, err := m.Submit([]byte(p)); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		want = append(want, p)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := m.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v (stats %+v)", err, m.Stats())
	}
	m.Close()
	<-done

	requireExactlyOnce(t, mu, got, want)
	requireCleanHops(t, m)
	st := m.Stats()
	if st.Acked != 50 || st.Delivered != 50 || st.Pending != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Hops < 50 {
		t.Fatalf("two-hop routes should forward every payload at least once: %+v", st)
	}
}

func TestMeshFailoverOnLinkBlackout(t *testing.T) {
	reg := metrics.New()
	topo := fiveNode()
	tl := buildLinks(topo, 202, reg, netlink.ImpairConfig{})
	m := newTestMesh(t, Config{
		Topology: topo, Links: tl.conns,
		Source: 0, Dest: 4, Routes: 3,
		WatchdogWindow: 80 * time.Millisecond,
		AckTimeout:     400 * time.Millisecond,
		Seed:           202, Metrics: reg,
	})

	mu, got, done := drain(m)
	var want []string
	for i := 0; i < 60; i++ {
		p := fmt.Sprintf("msg-%03d", i)
		if _, err := m.Submit([]byte(p)); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		want = append(want, p)
		if i == 10 {
			// Kill the route through node 1 in both directions; the mesh
			// must fail its traffic over to the other two routes.
			for _, li := range []int{0, 1} {
				tl.imps[li][0].SetBlackout(true)
				tl.imps[li][1].SetBlackout(true)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v (stats %+v)", err, m.Stats())
	}
	m.Close()
	<-done

	requireExactlyOnce(t, mu, got, want)
	requireCleanHops(t, m)
}

// TestMeshAllRoutesDownParkAndResume covers the only-route-lost edge:
// payloads submitted while every route is down must park (not fail) and
// resume the moment the route comes back.
func TestMeshAllRoutesDownParkAndResume(t *testing.T) {
	reg := metrics.New()
	topo := Topology{Nodes: 3, Links: []Link{{A: 0, B: 1}, {A: 1, B: 2}}}
	tl := buildLinks(topo, 303, reg, netlink.ImpairConfig{})
	m := newTestMesh(t, Config{
		Topology: topo, Links: tl.conns,
		Source: 0, Dest: 2, Routes: 1,
		WatchdogWindow: 60 * time.Millisecond,
		AckTimeout:     300 * time.Millisecond,
		Seed:           303, Metrics: reg,
	})
	mu, got, done := drain(m)

	if err := m.StopNode(1); err != nil {
		t.Fatalf("StopNode: %v", err)
	}
	if m.NodeUp(1) {
		t.Fatal("node 1 should be down")
	}
	var want []string
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("parked-%d", i)
		if _, err := m.Submit([]byte(p)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		want = append(want, p)
	}

	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Parked < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("payloads never parked: %+v", m.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := m.Stats(); st.RoutesUsable != 0 {
		t.Fatalf("no route should be usable: %+v", st)
	}

	if err := m.RestartNode(1); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := m.Flush(ctx); err != nil {
		t.Fatalf("Flush after recovery: %v (stats %+v)", err, m.Stats())
	}
	m.Close()
	<-done

	requireExactlyOnce(t, mu, got, want)
	requireCleanHops(t, m)
	if st := m.Stats(); st.NodeRestarts != 1 {
		t.Fatalf("expected one node restart, got %+v", st)
	}
}

// TestMeshSlowRouteDuplicateSuppressed covers the reroute-overlap edge:
// a payload rerouted off a slow route is later also delivered by that
// slow route, and the destination must suppress the straggler.
func TestMeshSlowRouteDuplicateSuppressed(t *testing.T) {
	reg := metrics.New()
	topo := Topology{Nodes: 4, Links: []Link{
		{A: 0, B: 1}, {A: 1, B: 3}, // route 0, made slow below
		{A: 0, B: 2}, {A: 2, B: 3}, // route 1, fast
	}}
	// 300ms one-way latency on route 0's links: far beyond the ack
	// timeout, so the first dispatch always loses the race.
	tl := buildLinksPer(topo, 404, reg, func(li int) netlink.ImpairConfig {
		if li == 0 || li == 1 {
			return netlink.ImpairConfig{Latency: 300 * time.Millisecond}
		}
		return netlink.ImpairConfig{}
	})
	m := newTestMesh(t, Config{
		Topology: topo, Links: tl.conns,
		Source: 0, Dest: 3, Routes: 2,
		AckTimeout: 100 * time.Millisecond,
		Seed:       404, Metrics: reg,
	})
	mu, got, done := drain(m)

	if _, err := m.Submit([]byte("raced")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := m.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v (stats %+v)", err, m.Stats())
	}
	if st := m.Stats(); st.Reroutes < 1 {
		t.Fatalf("expected at least one reroute, got %+v", st)
	}

	// Wait for the slow route's straggler to arrive and be suppressed.
	deadline := time.Now().Add(10 * time.Second)
	for m.Stats().DupSuppressed < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("straggler never suppressed: %+v", m.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.Close()
	<-done

	requireExactlyOnce(t, mu, got, []string{"raced"})
	if st := m.Stats(); st.Delivered != 1 {
		t.Fatalf("exactly one delivery expected: %+v", st)
	}
}

// TestMeshNodeRestartReplaysWAL covers the crash-recovery edge: a relay
// node that crashes with forwarding backlog in its WAL replays it on
// restart, and end-to-end dedup keeps the replay invisible above.
func TestMeshNodeRestartReplaysWAL(t *testing.T) {
	reg := metrics.New()
	dir := t.TempDir()
	topo := Topology{Nodes: 3, Links: []Link{{A: 0, B: 1}, {A: 1, B: 2}}}
	tl := buildLinks(topo, 505, reg, netlink.ImpairConfig{})
	m := newTestMesh(t, Config{
		Topology: topo, Links: tl.conns,
		Source: 0, Dest: 2, Routes: 1,
		WatchdogWindow: 80 * time.Millisecond,
		AckTimeout:     2 * time.Second,
		WALDir:         dir,
		Seed:           505, Metrics: reg,
	})
	mu, got, done := drain(m)

	var want []string
	for i := 0; i < 30; i++ {
		p := fmt.Sprintf("wal-%03d", i)
		if _, err := m.Submit([]byte(p)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		want = append(want, p)
		if i == 15 {
			if err := m.StopNode(1); err != nil {
				t.Fatalf("StopNode: %v", err)
			}
		}
		time.Sleep(time.Millisecond)
	}

	// The crashed relay's forwarding WAL must exist: that file is what
	// carries its accepted-but-unforwarded backlog across the restart.
	wal := filepath.Join(dir, "relay-n1-to-n2.wal")
	if fi, err := os.Stat(wal); err != nil || fi.Size() == 0 {
		t.Fatalf("forwarding WAL missing or empty: %v", err)
	}

	if err := m.RestartNode(1); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Flush(ctx); err != nil {
		t.Fatalf("Flush after restart: %v (stats %+v)", err, m.Stats())
	}
	m.Close()
	<-done

	requireExactlyOnce(t, mu, got, want)
	requireCleanHops(t, m)
}

func TestMeshConfigErrors(t *testing.T) {
	topo := Topology{Nodes: 3, Links: []Link{{A: 0, B: 1}, {A: 1, B: 2}}}
	mk := func() []LinkConns {
		tl := buildLinks(topo, 1, metrics.New(), netlink.ImpairConfig{})
		return tl.conns
	}
	closeAll := func(cs []LinkConns) {
		for _, c := range cs {
			c.A.Close()
			c.B.Close()
		}
	}

	cases := []Config{
		{Topology: Topology{Nodes: 1}, Source: 0, Dest: 0},
		{Topology: topo, Links: nil, Source: 0, Dest: 2},
		{Topology: topo, Source: 0, Dest: 7},
		{Topology: topo, Source: 1, Dest: 1},
		{Topology: Topology{Nodes: 4, Links: []Link{{A: 0, B: 1}, {A: 2, B: 3}}}, Source: 0, Dest: 3},
	}
	for i, cfg := range cases {
		if len(cfg.Links) == 0 && cfg.Topology.Nodes == topo.Nodes {
			cfg.Links = nil
		} else if cfg.Topology.Nodes == topo.Nodes {
			cfg.Links = mk()
		}
		if cfg.Topology.Nodes == 4 {
			tl := buildLinks(cfg.Topology, 1, metrics.New(), netlink.ImpairConfig{})
			cfg.Links = tl.conns
		}
		m, err := New(cfg)
		if err == nil {
			m.Close()
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
		closeAll(cfg.Links)
	}
}

func TestMeshSubmitAfterClose(t *testing.T) {
	reg := metrics.New()
	topo := Topology{Nodes: 2, Links: []Link{{A: 0, B: 1}}}
	tl := buildLinks(topo, 606, reg, netlink.ImpairConfig{})
	m := newTestMesh(t, Config{
		Topology: topo, Links: tl.conns,
		Source: 0, Dest: 1,
		Seed: 606, Metrics: reg,
	})
	m.Close()
	if _, err := m.Submit([]byte("late")); err != ErrClosed {
		t.Fatalf("Submit after close: %v, want ErrClosed", err)
	}
}
