package relay

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"

	"ghm/internal/engine"
	"ghm/internal/netlink"
	"ghm/internal/session"
	"ghm/internal/supervise"
)

// seenCap bounds a node's per-hop dedup ledger. When the ledger fills it
// is cleared: a later duplicate may then be re-forwarded, which the
// destination's end-to-end ledger still suppresses — per-hop dedup is a
// traffic optimization, end-to-end dedup is the guarantee.
const seenCap = 1 << 16

// nodeEnd is one node's attachment to one of its links: the engine
// owning that side's conn and the two directional endpoint ids. The
// engine outlives node crashes — a crashed node loses its stations and
// its forwarding state, not the physical link.
type nodeEnd struct {
	link   int // topology link index
	peer   int // neighbor node id
	eng    *engine.Engine
	sendID int // engine endpoint carrying me -> peer
	recvID int // engine endpoint carrying peer -> me
}

// nodeRuntime is one incarnation of a relay node: the supervised
// sessions it sends through, the receivers it drains, and the in-memory
// forwarding dedup ledger. StopNode discards the whole runtime (a node
// crash erases everything but the WALs); RestartNode builds a fresh one.
type nodeRuntime struct {
	sessions  map[int]*session.Session // keyed by peer node id
	receivers []*netlink.Receiver

	cancel context.CancelFunc
	wg     sync.WaitGroup

	seenMu sync.Mutex
	seen   map[key]bool
}

// node is one relay-mesh participant. The node itself (identity, link
// ends) is permanent; its runtime comes and goes with crashes.
type node struct {
	m    *Mesh
	id   int
	ends []nodeEnd

	mu sync.Mutex
	rt *nodeRuntime
}

// sessionTo returns the live session toward peer, or nil while the node
// is down (or peer is not adjacent). Safe under Mesh.mu: node.mu is a
// leaf lock.
func (n *node) sessionTo(peer int) *session.Session {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rt == nil {
		return nil
	}
	return n.rt.sessions[peer]
}

// walPath names the forwarding WAL for the directed hop n -> peer.
func (n *node) walPath(peer int) string {
	if n.m.cfg.WALDir == "" {
		return ""
	}
	return filepath.Join(n.m.cfg.WALDir, fmt.Sprintf("relay-n%d-to-n%d.wal", n.id, peer))
}

// start builds a fresh runtime: one supervised session and one receiver
// per link end, a drain goroutine per receiver and a health watcher per
// session. With a WALDir, each session replays its forwarding backlog —
// frames the previous incarnation accepted but had not yet pushed to the
// next hop go out again.
func (n *node) start() error {
	m := n.m
	rt := &nodeRuntime{
		sessions: make(map[int]*session.Session, len(n.ends)),
		seen:     make(map[key]bool),
	}
	var ctx context.Context
	ctx, rt.cancel = context.WithCancel(context.Background())

	fail := func(err error) error {
		rt.cancel()
		for _, s := range rt.sessions {
			s.Close()
		}
		for _, r := range rt.receivers {
			r.Close()
		}
		rt.wg.Wait()
		return err
	}

	for i, end := range n.ends {
		end := end
		out := hopID{From: n.id, To: end.peer}
		sess, err := session.New(session.Config{
			Dial:              func() (netlink.PacketConn, error) { return end.eng.Endpoint(end.sendID) },
			Params:            m.params(),
			Tap:               m.hops[out].live.Observe,
			WALPath:           n.walPath(end.peer),
			WALSync:           false,
			WatchdogWindow:    m.cfg.WatchdogWindow,
			WatchdogInterval:  m.cfg.WatchdogWindow / 16,
			RestartBackoff:    m.cfg.RestartBackoff,
			RestartBackoffMax: m.cfg.RestartBackoffMax,
			BreakerThreshold:  m.cfg.BreakerThreshold,
			BreakerCooldown:   m.cfg.BreakerCooldown,
			Seed:              m.hopSeed(n.id, i),
			Clock:             m.wheel.Clock(),
			Metrics:           m.reg,
		})
		if err != nil {
			return fail(fmt.Errorf("relay: node %d session to %d: %w", n.id, end.peer, err))
		}
		rt.sessions[end.peer] = sess

		// Health watcher: project this hop's session transitions into the
		// mesh's route-health view. The channel closes with the session.
		hc := sess.Subscribe()
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			for tr := range hc {
				m.noteHopHealth(out, tr.To)
			}
		}()

		in := hopID{From: end.peer, To: n.id}
		conn, err := end.eng.Endpoint(end.recvID)
		if err != nil {
			return fail(fmt.Errorf("relay: node %d endpoint from %d: %w", n.id, end.peer, err))
		}
		r, err := netlink.NewReceiver(conn, netlink.ReceiverConfig{
			Params:          m.params(),
			RetryInterval:   m.cfg.RetryInterval,
			RetryBackoffMax: m.cfg.RetryBackoffMax,
			Tap:             m.hops[in].live.Observe,
			Metrics:         m.reg,
		})
		if err != nil {
			return fail(fmt.Errorf("relay: node %d receiver from %d: %w", n.id, end.peer, err))
		}
		rt.receivers = append(rt.receivers, r)

		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			for {
				msg, err := r.Recv(ctx)
				if err != nil {
					return
				}
				n.handleFrame(rt, msg)
			}
		}()
	}

	n.mu.Lock()
	n.rt = rt
	n.mu.Unlock()

	// Fresh sessions start healthy; publish that so parked traffic can
	// resume the moment a restarted node is back.
	for _, end := range n.ends {
		m.noteHopHealth(hopID{From: n.id, To: end.peer}, supervise.Healthy)
	}
	return nil
}

// stop tears the runtime down: a deliberate node crash. Sessions and
// receivers die (their engine endpoints detach; the links stay up for
// the next incarnation), drain goroutines exit, and the in-memory
// forwarding ledger is lost — exactly what a process crash would lose.
func (n *node) stop() {
	n.mu.Lock()
	rt := n.rt
	n.rt = nil
	n.mu.Unlock()
	if rt == nil {
		return
	}
	rt.cancel()
	for _, s := range rt.sessions {
		s.Close()
	}
	for _, r := range rt.receivers {
		// Tape crash^R before discarding: the receiving stations' memory
		// really is erased, so the verifier must license the redeliveries
		// the next incarnation will accept.
		r.Crash()
		r.Close()
	}
	rt.wg.Wait()
}

// handleFrame processes one inbound frame on this node: dedup, then
// deliver (destination), complete (ack at the source) or forward.
func (n *node) handleFrame(rt *nodeRuntime, p []byte) {
	m := n.m
	f, err := parseFrame(p)
	if err != nil {
		m.mt.dropped.Inc()
		return
	}

	// Per-hop dedup: a session resubmission after a hop crash delivers
	// the same attempt twice; forward it once.
	k := f.key()
	rt.seenMu.Lock()
	if rt.seen[k] {
		rt.seenMu.Unlock()
		m.mt.dupSuppressed.Inc()
		m.addDup()
		return
	}
	if len(rt.seen) >= seenCap {
		rt.seen = make(map[key]bool)
	}
	rt.seen[k] = true
	rt.seenMu.Unlock()

	if int(f.Dst) == n.id {
		if f.Kind == frameAck {
			m.mt.acks.Inc()
			m.completeAck(f.ID)
			return
		}
		m.deliverLocal(n, f)
		return
	}

	// Forward toward the destination along the embedded route.
	next, ok := nextHop(f.Route, n.id)
	if !ok {
		m.mt.dropped.Inc()
		return
	}
	sess := n.sessionTo(next)
	if sess == nil {
		// The next-hop session is gone (this node is stopping); the
		// source's ack timeout re-dispatches the payload.
		m.mt.dropped.Inc()
		return
	}
	if _, err := sess.Enqueue(p); err != nil {
		m.mt.dropped.Inc()
		return
	}
	m.mt.hops.Inc()
	m.addHop()
}

// nextHop finds self in route and returns its successor.
func nextHop(route []byte, self int) (int, bool) {
	for i := 0; i+1 < len(route); i++ {
		if int(route[i]) == self {
			return int(route[i+1]), true
		}
	}
	return 0, false
}

// reverseRoute returns a reversed copy of route (for acks).
func reverseRoute(route []byte) []byte {
	out := make([]byte, len(route))
	for i, b := range route {
		out[len(route)-1-i] = b
	}
	return out
}
