// Package relay composes supervised ghm sessions into a multi-hop relay
// mesh: a graph of nodes whose every edge is one self-healing
// session.Session per direction, with source routing over k
// link-disjoint routes, per-hop duplicate suppression, end-to-end
// acknowledgement and health-driven failover. The paper solves one hop —
// transmitter to receiver over a lossy, duplicating, reordering,
// crash-prone link; this package is the "source to destination" layer
// its title promises, in the end-to-end spirit of Bunn–Ostrovsky's
// routing over unreliable networks.
//
// Guarantee layering: each hop gives the protocol's per-message
// exactly-once-between-crashes / at-least-once-across-crashes semantics
// (checkable per hop with the generalized per-attempt verify
// conditions); the mesh adds destination-side dedup keyed on the
// payload's end-to-end identity, so delivery to the destination's higher
// layer is exactly once even when failover deliberately re-disperses a
// payload over several routes.
package relay

import (
	"fmt"
)

// Link is one undirected edge of the mesh; each direction carries an
// independent supervised session.
type Link struct {
	A int `json:"a"`
	B int `json:"b"`
}

// Topology is the mesh graph: Nodes numbered [0, Nodes) and undirected
// links between them. It serializes to JSON for scenario repro files.
type Topology struct {
	Nodes int    `json:"nodes"`
	Links []Link `json:"links"`
}

// Validate checks node bounds, self-loops and duplicate links.
func (t Topology) Validate() error {
	if t.Nodes < 2 {
		return fmt.Errorf("relay: topology needs at least 2 nodes, have %d", t.Nodes)
	}
	if t.Nodes > 256 {
		return fmt.Errorf("relay: topology supports at most 256 nodes, have %d", t.Nodes)
	}
	seen := make(map[Link]bool, len(t.Links))
	for _, l := range t.Links {
		if l.A < 0 || l.A >= t.Nodes || l.B < 0 || l.B >= t.Nodes {
			return fmt.Errorf("relay: link %d-%d out of range [0, %d)", l.A, l.B, t.Nodes)
		}
		if l.A == l.B {
			return fmt.Errorf("relay: self-loop on node %d", l.A)
		}
		k := Link{A: min(l.A, l.B), B: max(l.A, l.B)}
		if seen[k] {
			return fmt.Errorf("relay: duplicate link %d-%d", k.A, k.B)
		}
		seen[k] = true
	}
	return nil
}

// linkIndex returns the topology index of the undirected link between a
// and b, or -1.
func (t Topology) linkIndex(a, b int) int {
	for i, l := range t.Links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return i
		}
	}
	return -1
}

// DisjointRoutes returns up to k link-disjoint routes from src to dst as
// node paths (src first, dst last), shortest first: repeated BFS, each
// accepted route's links removed before the next search. Deterministic
// for a given topology (neighbors explored in link order). Returns nil
// when src and dst are disconnected.
func (t Topology) DisjointRoutes(src, dst, k int) [][]int {
	if k <= 0 {
		k = 1
	}
	used := make(map[Link]bool)
	norm := func(a, b int) Link { return Link{A: min(a, b), B: max(a, b)} }

	var routes [][]int
	for len(routes) < k {
		// BFS over links not yet claimed by an accepted route.
		prev := make([]int, t.Nodes)
		for i := range prev {
			prev[i] = -1
		}
		prev[src] = src
		queue := []int{src}
		for len(queue) > 0 && prev[dst] == -1 {
			n := queue[0]
			queue = queue[1:]
			for _, l := range t.Links {
				if used[norm(l.A, l.B)] {
					continue
				}
				var next int
				switch n {
				case l.A:
					next = l.B
				case l.B:
					next = l.A
				default:
					continue
				}
				if prev[next] == -1 {
					prev[next] = n
					queue = append(queue, next)
				}
			}
		}
		if prev[dst] == -1 {
			break // no further disjoint route exists
		}
		var rev []int
		for n := dst; n != src; n = prev[n] {
			rev = append(rev, n)
		}
		rev = append(rev, src)
		route := make([]int, len(rev))
		for i, n := range rev {
			route[len(rev)-1-i] = n
		}
		for i := 0; i+1 < len(route); i++ {
			used[norm(route[i], route[i+1])] = true
		}
		routes = append(routes, route)
	}
	return routes
}
