package relay

import (
	"encoding/json"
	"reflect"
	"testing"
)

// fiveNode is the canonical soak topology: source 0, destination 4,
// three intermediaries each linked to both ends — three link-disjoint
// routes of two hops each.
func fiveNode() Topology {
	return Topology{
		Nodes: 5,
		Links: []Link{
			{A: 0, B: 1}, {A: 1, B: 4},
			{A: 0, B: 2}, {A: 2, B: 4},
			{A: 0, B: 3}, {A: 3, B: 4},
		},
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := fiveNode().Validate(); err != nil {
		t.Fatalf("five-node mesh should validate: %v", err)
	}
	bad := []Topology{
		{Nodes: 1},
		{Nodes: 3, Links: []Link{{A: 0, B: 3}}},
		{Nodes: 3, Links: []Link{{A: 1, B: 1}}},
		{Nodes: 3, Links: []Link{{A: 0, B: 1}, {A: 1, B: 0}}},
	}
	for i, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, topo)
		}
	}
}

func TestDisjointRoutes(t *testing.T) {
	topo := fiveNode()
	routes := topo.DisjointRoutes(0, 4, 3)
	if len(routes) != 3 {
		t.Fatalf("expected 3 link-disjoint routes, got %v", routes)
	}
	usedLinks := map[int]bool{}
	for _, r := range routes {
		if r[0] != 0 || r[len(r)-1] != 4 {
			t.Fatalf("route %v must run source to destination", r)
		}
		for i := 0; i+1 < len(r); i++ {
			li := topo.linkIndex(r[i], r[i+1])
			if li < 0 {
				t.Fatalf("route %v uses nonexistent link %d-%d", r, r[i], r[i+1])
			}
			if usedLinks[li] {
				t.Fatalf("routes share link %d-%d: %v", r[i], r[i+1], routes)
			}
			usedLinks[li] = true
		}
	}
	// Asking for more routes than exist returns what the topology offers.
	if got := topo.DisjointRoutes(0, 4, 10); len(got) != 3 {
		t.Fatalf("expected 3 routes when over-asking, got %v", got)
	}
}

func TestDisjointRoutesLine(t *testing.T) {
	line := Topology{Nodes: 3, Links: []Link{{A: 0, B: 1}, {A: 1, B: 2}}}
	routes := line.DisjointRoutes(0, 2, 2)
	if !reflect.DeepEqual(routes, [][]int{{0, 1, 2}}) {
		t.Fatalf("line topology should yield one route, got %v", routes)
	}
}

func TestDisjointRoutesDisconnected(t *testing.T) {
	topo := Topology{Nodes: 4, Links: []Link{{A: 0, B: 1}, {A: 2, B: 3}}}
	if routes := topo.DisjointRoutes(0, 3, 2); routes != nil {
		t.Fatalf("disconnected pair should yield no routes, got %v", routes)
	}
}

func TestTopologyJSONRoundTrip(t *testing.T) {
	topo := fiveNode()
	b, err := json.Marshal(topo)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Topology
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(topo, back) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, topo)
	}
}
