// Package secmodel measures the protocol's empirical security model: the
// realized per-message failure probability under a fixed hostile workload,
// swept across the Params space (epsilon and the size/bound schedule),
// compared against the epsilon each point promises.
//
// The theorems bound the probability that any Section 2.6 condition is
// violated for a message by epsilon; the sweep turns that bound into a
// measurement. Each swept point runs seeded simulations under an
// adversary mix combining the adaptive strategies of ghm/internal/
// adversary (replay floods riding under bound(t), duplication bursts at
// extension boundaries, length-keyed crash timing) with blind same-length
// floods and crash loops, counts violations over attempted messages, and
// reports the realized rate next to the promised epsilon. Results are
// JSON artifacts, so sweeps archive and diff across revisions.
//
// The companion Tune (see tune.go) is the E8-style auto-tuner: it runs
// candidate size/bound schedules — including deliberately weakened ones —
// through the same instrument and proposes the cheapest schedule whose
// measured error rate still honors epsilon.
package secmodel

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"ghm/internal/adversary"
	"ghm/internal/core"
	"ghm/internal/sim"
	"ghm/internal/trace"
)

// Schedule is a JSON-serializable size/bound schedule selector. The zero
// value is the paper's Figure 3 schedule; the constant overrides carve
// out the simple schedule families the E8 ablation studies.
type Schedule struct {
	// Name labels the schedule in artifacts ("paper" when empty).
	Name string `json:"name,omitempty"`
	// BoundConst, when positive, replaces bound(t) with this constant:
	// small = eager extension, large = lazy.
	BoundConst int `json:"boundConst,omitempty"`
	// SizeConst, when positive, replaces size(t) with this constant for
	// t > 1 (the level-1 draw keeps the paper's size so the initial
	// strings stay honest): small = thin strings, cheap and weak.
	SizeConst int `json:"sizeConst,omitempty"`
	// SizeConstAll, when positive, replaces size(t) with this constant at
	// every level including the first — the deliberately reckless family
	// the tuner uses to probe where the empirical model actually breaks.
	SizeConstAll int `json:"sizeConstAll,omitempty"`
}

// Label returns the schedule's display name.
func (s Schedule) Label() string {
	if s.Name != "" {
		return s.Name
	}
	return "paper"
}

// Params realizes the schedule at the given epsilon.
func (s Schedule) Params(eps float64) core.Params {
	p := core.Params{Epsilon: eps}
	if s.BoundConst > 0 {
		b := s.BoundConst
		p.Bound = func(int) int { return b }
	}
	if s.SizeConstAll > 0 {
		n := s.SizeConstAll
		p.Size = func(int) int { return n }
	} else if s.SizeConst > 0 {
		n := s.SizeConst
		p.Size = func(t int) int {
			if t == 1 {
				return core.DefaultSize(1, eps)
			}
			return n
		}
	}
	return p
}

// Point is one swept coordinate: a schedule at an epsilon.
type Point struct {
	Schedule
	Epsilon float64 `json:"epsilon"`
}

// SweepConfig bounds a sweep. Zero fields take the defaults noted.
type SweepConfig struct {
	// Points are the Params-space coordinates to measure (default
	// DefaultPoints()).
	Points []Point
	// Messages per trial (default 120).
	Messages int
	// Trials per point; violations aggregate across trials (default 3).
	Trials int
	// MaxSteps bounds each trial (default 6_000_000 — the floods make
	// progress slow, not uncertain).
	MaxSteps int
	// Seed makes the whole sweep reproducible.
	Seed int64
}

func (c SweepConfig) withDefaults() SweepConfig {
	if len(c.Points) == 0 {
		c.Points = DefaultPoints()
	}
	if c.Messages <= 0 {
		c.Messages = 120
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 6_000_000
	}
	return c
}

// DefaultPoints is the standard grid: the paper's schedule at a spread of
// epsilons. Every default point is a sound schedule, so a clean sweep is
// the expected outcome; weakened schedules belong to the tuner's
// candidate list, not the conformance grid.
func DefaultPoints() []Point {
	return []Point{
		{Epsilon: 1.0 / (1 << 6)},
		{Epsilon: 1.0 / (1 << 12)},
		{Epsilon: 1.0 / (1 << 20)},
	}
}

// PointResult is the measurement at one swept point.
type PointResult struct {
	Point Point `json:"point"`
	// Messages is the total attempted messages across trials — the
	// denominator of Realized.
	Messages int `json:"messages"`
	// Violations counts Section 2.6 condition violations across trials.
	Violations int `json:"violations"`
	// Realized is Violations/Messages: the empirical per-message failure
	// probability under the sweep's adversary mix.
	Realized float64 `json:"realized"`
	// RealizedUpper is a crude 95% upper confidence bound on the failure
	// probability: (Violations+3)/Messages (the rule of three extended to
	// nonzero counts). A clean run of n messages still only certifies
	// failure rates above 3/n.
	RealizedUpper float64 `json:"realizedUpper"`
	// WithinEpsilon reports Realized <= Epsilon — the sweep's conformance
	// verdict at this point.
	WithinEpsilon bool `json:"withinEpsilon"`
	// DataPerMsg / CtlPerMsg are the protocol's measured cost at this
	// point (packets per completed message).
	DataPerMsg float64 `json:"dataPerMsg"`
	CtlPerMsg  float64 `json:"ctlPerMsg"`
	// MaxRhoBits is the receiver-storage high-water mark.
	MaxRhoBits int `json:"maxRhoBits"`
	// Completed counts messages that finished with OK within the step
	// budget (floods may stall the tail without voiding the measurement).
	Completed int `json:"completed"`
}

// SweepResult is the whole sweep: one JSON artifact.
type SweepResult struct {
	Seed     int64         `json:"seed"`
	Messages int           `json:"messagesPerTrial"`
	Trials   int           `json:"trials"`
	Points   []PointResult `json:"points"`
}

// AllWithinEpsilon reports whether every swept point's realized failure
// probability honored its epsilon.
func (r SweepResult) AllWithinEpsilon() bool {
	for _, p := range r.Points {
		if !p.WithinEpsilon {
			return false
		}
	}
	return true
}

// JSON renders the sweep as an indented JSON artifact.
func (r SweepResult) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Sprintf("{%q:%q}", "error", err.Error())
	}
	return string(b)
}

// attack builds the sweep's fixed hostile workload: the adaptive
// strategies plus blind same-length floods, raw replays, loss and crash
// loops. Everything is seeded — the same seed measures every point under
// the same attack schedule modulo the protocol's own behavior.
func attack(seed int64) adversary.Adversary {
	rng := func(i int64) *rand.Rand { return rand.New(rand.NewSource(seed + i)) }
	return adversary.Compose(
		adversary.NewFair(rng(1), adversary.FairConfig{Loss: 0.15}),
		adversary.NewGuessFlood(rng(2), trace.DirTR, 3),
		adversary.NewGuessFlood(rng(3), trace.DirRT, 3),
		adversary.NewReplay(rng(4), trace.DirTR, 2),
		adversary.NewReplayUnderBound(rng(5), adversary.ReplayUnderBoundConfig{Rate: 2}),
		adversary.NewExtensionBurst(rng(6), adversary.ExtensionBurstConfig{Rate: 4}),
		adversary.NewCrashTimer(adversary.CrashTimerConfig{CrashR: true, Cooldown: 512, Max: 8}),
		&adversary.CrashLoop{EveryT: 1733, EveryR: 301},
	)
}

// Sweep measures the realized per-message failure probability at every
// configured point. The result is a pure function of cfg.
func Sweep(cfg SweepConfig) (SweepResult, error) {
	cfg = cfg.withDefaults()
	res := SweepResult{Seed: cfg.Seed, Messages: cfg.Messages, Trials: cfg.Trials}
	for pi, pt := range cfg.Points {
		pr, err := measure(pt, cfg, int64(pi))
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, pr)
	}
	return res, nil
}

// measure runs one point's trials and aggregates the verdict.
func measure(pt Point, cfg SweepConfig, salt int64) (PointResult, error) {
	pr := PointResult{Point: pt}
	var packetsTR, packetsRT int
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed*1_000_003 + salt*997 + int64(trial)
		r, err := sim.RunGHM(sim.Config{
			Messages:  cfg.Messages,
			MaxSteps:  cfg.MaxSteps,
			Adversary: attack(seed),
		}, pt.Params(pt.Epsilon), seed+1)
		if err != nil {
			return pr, fmt.Errorf("secmodel: point %s eps=%g: %w", pt.Label(), pt.Epsilon, err)
		}
		pr.Messages += r.Attempted
		pr.Violations += r.Report.Violations()
		pr.Completed += r.Completed
		packetsTR += r.PacketsTR
		packetsRT += r.PacketsRT
		for _, pm := range r.PerMessage {
			if pm.MaxRxBits > pr.MaxRhoBits {
				pr.MaxRhoBits = pm.MaxRxBits
			}
		}
	}
	if pr.Messages > 0 {
		pr.Realized = float64(pr.Violations) / float64(pr.Messages)
		pr.RealizedUpper = (float64(pr.Violations) + 3) / float64(pr.Messages)
	}
	if pr.Completed > 0 {
		pr.DataPerMsg = float64(packetsTR) / float64(pr.Completed)
		pr.CtlPerMsg = float64(packetsRT) / float64(pr.Completed)
	}
	pr.WithinEpsilon = pr.Realized <= pt.Epsilon
	return pr, nil
}
