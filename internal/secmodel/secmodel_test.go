package secmodel

import (
	"encoding/json"
	"testing"

	"ghm/internal/core"
)

// small keeps unit-test sweeps fast; the CI smoke and EXPERIMENTS runs
// use larger samples.
var small = SweepConfig{Messages: 60, Trials: 2, MaxSteps: 2_000_000, Seed: 42}

func TestScheduleParamsOverrides(t *testing.T) {
	eps := 1.0 / (1 << 12)

	if p := (Schedule{}).Params(eps); p.Bound != nil || p.Size != nil {
		t.Error("zero schedule must keep the paper's functions (nil overrides)")
	}
	p := Schedule{BoundConst: 7, SizeConst: 9}.Params(eps)
	if p.Bound(1) != 7 || p.Bound(30) != 7 {
		t.Errorf("BoundConst not applied: bound(1)=%d bound(30)=%d", p.Bound(1), p.Bound(30))
	}
	if got, want := p.Size(1), core.DefaultSize(1, eps); got != want {
		t.Errorf("SizeConst must keep the level-1 draw honest: size(1)=%d want %d", got, want)
	}
	if p.Size(5) != 9 {
		t.Errorf("SizeConst not applied above level 1: size(5)=%d", p.Size(5))
	}
	pa := Schedule{SizeConstAll: 3}.Params(eps)
	if pa.Size(1) != 3 || pa.Size(5) != 3 {
		t.Errorf("SizeConstAll must apply at every level: size(1)=%d size(5)=%d", pa.Size(1), pa.Size(5))
	}
}

func TestSweepDeterministic(t *testing.T) {
	a, err := Sweep(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(small)
	if err != nil {
		t.Fatal(err)
	}
	if a.JSON() != b.JSON() {
		t.Fatalf("same config produced different sweeps:\n%s\n--\n%s", a.JSON(), b.JSON())
	}
}

// TestEpsilonSweepSmokeTwoPoints is the CI epsilon-sweep smoke: at two
// Params points the realized per-message failure probability under the
// full adversary mix must stay at or below the promised epsilon.
func TestEpsilonSweepSmokeTwoPoints(t *testing.T) {
	cfg := small
	cfg.Points = []Point{
		{Epsilon: 1.0 / (1 << 6)},
		{Epsilon: 1.0 / (1 << 12)},
	}
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("swept %d points, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		t.Logf("eps=%g: %d violations / %d messages (realized %.6f, upper %.6f)",
			p.Point.Epsilon, p.Violations, p.Messages, p.Realized, p.RealizedUpper)
		if p.Messages == 0 {
			t.Errorf("eps=%g: no messages attempted", p.Point.Epsilon)
		}
		if !p.WithinEpsilon {
			t.Errorf("eps=%g: realized failure probability %.6f exceeds epsilon",
				p.Point.Epsilon, p.Realized)
		}
	}
	if !res.AllWithinEpsilon() {
		t.Error("AllWithinEpsilon disagrees with the per-point verdicts")
	}
}

func TestSweepJSONArtifactRoundTrips(t *testing.T) {
	res, err := Sweep(small)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepResult
	if err := json.Unmarshal([]byte(res.JSON()), &back); err != nil {
		t.Fatalf("sweep artifact is not valid JSON: %v", err)
	}
	if back.JSON() != res.JSON() {
		t.Error("sweep artifact does not round-trip")
	}
	if len(back.Points) != len(DefaultPoints()) {
		t.Errorf("artifact has %d points, want %d", len(back.Points), len(DefaultPoints()))
	}
}

// TestTuneProposesCheapestSoundSchedule exercises the auto-tuner end to
// end: the deliberately weakened candidates must be measured as broken
// (that is what calibrates the instrument), the sound ones must all stay
// within epsilon, and the proposal must be the cheapest admissible one.
func TestTuneProposesCheapestSoundSchedule(t *testing.T) {
	res, err := Tune(TuneConfig{Messages: 60, Trials: 2, MaxSteps: 2_000_000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("proposed %q\n%s", res.Proposed, res.JSON())

	prop := res.Proposal()
	if prop == nil {
		t.Fatal("tuner proposed nothing")
	}
	sawBroken := false
	for _, c := range res.Candidates {
		weak := c.Schedule.SizeConstAll > 0
		if weak {
			if c.Admissible {
				t.Errorf("weakened schedule %s measured admissible — the instrument has no teeth", c.Schedule.Label())
			}
			if c.Measured.Violations > 0 {
				sawBroken = true
			}
			continue
		}
		if !c.Admissible {
			t.Errorf("sound schedule %s measured inadmissible: %d violations / %d messages",
				c.Schedule.Label(), c.Measured.Violations, c.Measured.Messages)
		}
		if c.CostPerMsg < prop.CostPerMsg {
			t.Errorf("proposal %s (cost %.1f) is not the cheapest admissible: %s costs %.1f",
				prop.Schedule.Label(), prop.CostPerMsg, c.Schedule.Label(), c.CostPerMsg)
		}
	}
	if !sawBroken {
		t.Error("no weakened candidate produced violations: the empirical model was never stressed")
	}
	var back TuneResult
	if err := json.Unmarshal([]byte(res.JSON()), &back); err != nil {
		t.Fatalf("tune artifact is not valid JSON: %v", err)
	}
}
