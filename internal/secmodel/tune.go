package secmodel

import (
	"encoding/json"
	"fmt"
)

// Tune is the E8-style auto-tuner: the paper's conclusions leave choosing
// size/bound schedules as an open problem, and E8 showed the choice
// trades cost, not correctness — for sound schedules. Tune closes the
// loop empirically: it measures candidate schedules (including
// deliberately weakened ones) with the Sweep instrument and proposes the
// cheapest candidate whose measured failure rate still honors the target
// epsilon. Weak candidates are the point, not a bug: their measured
// violations are what anchors the empirical model to reality — the
// instrument demonstrably detects schedules that break.

// TuneConfig bounds one tuning run. Zero fields take the defaults noted.
type TuneConfig struct {
	// Epsilon is the target per-message error probability every proposed
	// schedule must honor (default core-level 2^-12).
	Epsilon float64
	// Candidates are the schedules to measure (default DefaultCandidates()).
	Candidates []Schedule
	// Messages, Trials, MaxSteps and Seed parameterize the underlying
	// sweep exactly as in SweepConfig.
	Messages int
	Trials   int
	MaxSteps int
	Seed     int64
}

// DefaultCandidates is the E8 ablation family plus the reckless probes:
// the sound variants compete on cost, the weakened ones calibrate the
// instrument (they must be measured as broken, or the sweep has no
// teeth).
func DefaultCandidates() []Schedule {
	return []Schedule{
		{Name: "paper"},
		{Name: "eager-bound1", BoundConst: 1},
		{Name: "lazy-bound64", BoundConst: 64},
		{Name: "thin-size8", SizeConst: 8},
		{Name: "reckless-size4", SizeConstAll: 4, BoundConst: 64},
		{Name: "reckless-size2", SizeConstAll: 2, BoundConst: 64},
	}
}

// CandidateResult is one measured candidate.
type CandidateResult struct {
	Schedule Schedule    `json:"schedule"`
	Measured PointResult `json:"measured"`
	// CostPerMsg is the candidate's traffic cost: DATA plus CTL packets
	// per completed message.
	CostPerMsg float64 `json:"costPerMsg"`
	// Admissible reports that the measured failure rate honored the
	// target epsilon and the run made progress.
	Admissible bool `json:"admissible"`
}

// TuneResult is the tuner's JSON artifact.
type TuneResult struct {
	Epsilon    float64           `json:"epsilon"`
	Seed       int64             `json:"seed"`
	Candidates []CandidateResult `json:"candidates"`
	// Proposed is the cheapest admissible candidate's schedule name.
	Proposed string `json:"proposed"`
}

// Proposal returns the proposed candidate, or nil if nothing was
// admissible.
func (r TuneResult) Proposal() *CandidateResult {
	for i := range r.Candidates {
		if r.Candidates[i].Schedule.Label() == r.Proposed && r.Candidates[i].Admissible {
			return &r.Candidates[i]
		}
	}
	return nil
}

// JSON renders the tuning run as an indented JSON artifact.
func (r TuneResult) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Sprintf("{%q:%q}", "error", err.Error())
	}
	return string(b)
}

// Tune measures every candidate under the sweep's adversary mix at the
// target epsilon and proposes the cheapest admissible schedule. The
// result is a pure function of cfg.
func Tune(cfg TuneConfig) (TuneResult, error) {
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1.0 / (1 << 12)
	}
	cands := cfg.Candidates
	if len(cands) == 0 {
		cands = DefaultCandidates()
	}
	res := TuneResult{Epsilon: cfg.Epsilon, Seed: cfg.Seed}
	sweepCfg := SweepConfig{
		Messages: cfg.Messages,
		Trials:   cfg.Trials,
		MaxSteps: cfg.MaxSteps,
		Seed:     cfg.Seed,
	}.withDefaults()

	best := -1
	for ci, cand := range cands {
		pt := Point{Schedule: cand, Epsilon: cfg.Epsilon}
		measured, err := measure(pt, sweepCfg, int64(ci))
		if err != nil {
			return res, err
		}
		cr := CandidateResult{
			Schedule:   cand,
			Measured:   measured,
			CostPerMsg: measured.DataPerMsg + measured.CtlPerMsg,
			// A candidate that never completes a message has an
			// unmeasurable cost and cannot be proposed, however clean
			// its (empty) record looks.
			Admissible: measured.WithinEpsilon && measured.Completed > 0,
		}
		res.Candidates = append(res.Candidates, cr)
		if !cr.Admissible {
			continue
		}
		if best < 0 || cr.CostPerMsg < res.Candidates[best].CostPerMsg ||
			(cr.CostPerMsg == res.Candidates[best].CostPerMsg &&
				cr.Measured.MaxRhoBits < res.Candidates[best].Measured.MaxRhoBits) {
			best = ci
		}
	}
	if best >= 0 {
		res.Proposed = res.Candidates[best].Schedule.Label()
	}
	return res, nil
}
