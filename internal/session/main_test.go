package session

import (
	"testing"

	"ghm/internal/testutil"
)

// TestMain arms the goroutine-leak guard for the whole suite: sessions
// stack a supervisor, an outbox and a station per rig, and a leaked
// supervision loop would silently restart stations forever.
func TestMain(m *testing.M) { testutil.Main(m) }
