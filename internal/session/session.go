// Package session composes the pieces the paper leaves to "the higher
// layer" into one self-healing sending endpoint: a supervised station
// (ghm/internal/netlink.Sender), the buffering outbox of Axiom 1
// (ghm/internal/outbox.Queue), and the crash-recovery supervisor of
// ghm/internal/supervise.
//
// The caller enqueues payloads; the outbox drives them through whichever
// station incarnation is currently alive. When the watchdog declares an
// incarnation wedged — work pending, no OK committing — the supervisor
// tears it down (a deliberate crash^T: the station's memory is erased,
// exactly the fault the protocol is built to survive) and dials a fresh
// one with fresh randomness; the outbox resubmits the unconfirmed
// backlog. Delivery is therefore at-least-once across restarts and
// exactly-once between them, matching the outbox's documented contract.
package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ghm/internal/clock"
	"ghm/internal/core"
	"ghm/internal/metrics"
	"ghm/internal/netlink"
	"ghm/internal/outbox"
	"ghm/internal/supervise"
	"ghm/internal/trace"
)

// errRestarted marks a Send interrupted because the supervisor tore the
// incarnation down mid-transfer; the outbox treats it like a crash and
// resubmits.
var errRestarted = errors.New("session: station restarted")

// Config parameterizes a Session. Dial is required; everything else
// defaults sanely.
type Config struct {
	// Dial opens the transport for one station incarnation. It is called
	// for every (re)start, so it must be safe to call repeatedly; pair it
	// with netlink.SharedConn to reuse one long-lived socket.
	Dial func() (netlink.PacketConn, error)
	// Params configures each incarnation's protocol transmitter. A seeded
	// Params.Source is drawn from sequentially across incarnations, so
	// every rebuild still gets fresh (but reproducible) randomness.
	Params core.Params
	// Tap observes station lifecycle events across all incarnations.
	Tap func(trace.Event)

	// WALPath/WALSync/MaxAttempts configure the outbox (see outbox.Config).
	WALPath     string
	WALSync     bool
	MaxAttempts int

	// Window is the station's sliding-window depth (default 1). Depths
	// above 1 build each incarnation as a netlink.WindowedSender and run
	// as many outbox workers, so up to Window payloads are in flight at
	// once; the windowed receiver releases them in admission order, and
	// the outbox's byte-identical resubmission after a wipe is exactly
	// the contract the window's exactly-once dedup needs.
	Window int

	// Watchdog, backoff and breaker knobs; see supervise.Config.
	WatchdogWindow    time.Duration
	WatchdogInterval  time.Duration
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
	BreakerThreshold  int
	BreakerWindow     time.Duration
	BreakerCooldown   time.Duration
	PartitionAfter    int

	// Seed fixes supervisor jitter for reproducible tests (0 = clock).
	Seed int64
	// Clock is the session's time source, handed to the supervisor
	// (watchdog stamps, breaker windows, backoff pacing) — nil keeps the
	// wall clock. The stations themselves take their clock from the
	// conn's engine wheel, so virtualizing a session fully means dialing
	// conns whose engines ride the same clock.
	Clock clock.Clock
	// Metrics receives the session.* family; nil uses metrics.Default().
	Metrics *metrics.Registry
}

// The session's own metric names (the supervisor adds the rest of the
// session.* family); declared constants per the metricname invariant.
const (
	mSessionResubmits = "session.resubmits"
	mSessionBacklog   = "session.backlog"
)

// Stats snapshots a Session's counters.
type Stats struct {
	Enqueued      int    // payloads accepted
	Sent          int    // payloads confirmed delivered
	Resubmits     int    // crash- or restart-triggered resubmissions
	Pending       int    // accepted but unconfirmed
	Restarts      int64  // station incarnations built after the first
	StartFailures int64  // Dial/build failures
	Wedges        int64  // watchdog firings
	BreakerOpens  int64  // circuit-breaker opens
	Generation    uint64 // incarnations built so far
	Health        supervise.Health
}

// station is one transmitting incarnation: the single-slot
// netlink.Sender or, with Config.Window above 1, a
// netlink.WindowedSender.
type station interface {
	Send(ctx context.Context, msg []byte) error
	Crash()
	Close() error
}

// Session is the supervised endpoint; see the package comment. Create
// with New, always Close.
type Session struct {
	cfg Config
	sup *supervise.Supervisor[station]
	q   *outbox.Queue

	resubmits *metrics.Counter

	// epoch numbers windowed-station incarnations. Each rebuild frames a
	// higher epoch into its admission seqs, so a long-lived remote
	// windowed receiver adopts the fresh stream instead of dropping the
	// restarted seq space as duplicates.
	epoch atomic.Uint64

	subMu  sync.Mutex
	subs   []chan supervise.Transition
	subbed bool // channels closed after Close

	closeOnce sync.Once
	closeErr  error
}

// New builds and starts a Session.
func New(cfg Config) (*Session, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("session: Dial is required")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	s := &Session{cfg: cfg, resubmits: reg.Counter(mSessionResubmits)}

	sup, err := supervise.New(supervise.Config[station]{
		Start:            s.start,
		Stop:             func(st station) { st.Close() },
		Pending:          s.pending,
		Window:           cfg.WatchdogWindow,
		Interval:         cfg.WatchdogInterval,
		BackoffBase:      cfg.RestartBackoff,
		BackoffMax:       cfg.RestartBackoffMax,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerWindow:    cfg.BreakerWindow,
		BreakerCooldown:  cfg.BreakerCooldown,
		PartitionAfter:   cfg.PartitionAfter,
		Seed:             cfg.Seed,
		Clock:            cfg.Clock,
		Metrics:          cfg.Metrics,
		OnTransition:     s.fanout,
	})
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	s.sup = sup

	q, err := outbox.New(outbox.Config{
		Send: s.send,
		Retryable: func(err error) bool {
			return errors.Is(err, netlink.ErrCrashed) || errors.Is(err, errRestarted)
		},
		WALPath:     cfg.WALPath,
		WALSync:     cfg.WALSync,
		MaxAttempts: cfg.MaxAttempts,
		Window:      cfg.Window,
	})
	if err != nil {
		sup.Close()
		return nil, fmt.Errorf("session: %w", err)
	}
	s.q = q

	reg.GaugeFunc(mSessionBacklog, func() float64 {
		return float64(q.Stats().Pending)
	})

	// Run only after the queue is wired: the supervisor goroutine reads
	// s.q through pending, and goroutine creation orders the writes.
	sup.Run()
	return s, nil
}

// start dials and builds one station incarnation. The tap wrapper feeds
// every OK to the watchdog as progress before forwarding to the caller's
// tap.
func (s *Session) start() (station, error) {
	conn, err := s.cfg.Dial()
	if err != nil {
		return nil, err
	}
	tap := func(e trace.Event) {
		if e.Kind == trace.KindOK {
			s.sup.Progress()
		}
		if s.cfg.Tap != nil {
			s.cfg.Tap(e)
		}
	}
	var st station
	if s.cfg.Window > 1 {
		st, err = netlink.NewWindowedSender(conn, netlink.WindowedSenderConfig{
			Window:  s.cfg.Window,
			Epoch:   s.epoch.Add(1),
			Params:  s.cfg.Params,
			Tap:     tap,
			Metrics: s.cfg.Metrics,
		})
	} else {
		st, err = netlink.NewSender(conn, netlink.SenderConfig{
			Params:  s.cfg.Params,
			Tap:     tap,
			Metrics: s.cfg.Metrics,
		})
	}
	if err != nil {
		conn.Close()
		return nil, err
	}
	return st, nil
}

// pending reports unconfirmed backlog to the watchdog.
func (s *Session) pending() bool { return s.q.Stats().Pending > 0 }

// send is the outbox's SendFunc: transfer one payload through the live
// incarnation, translating a teardown mid-transfer into a retryable
// error.
func (s *Session) send(ctx context.Context, msg []byte) error {
	st, _, err := s.sup.Current(ctx)
	if err != nil {
		return err // ctx ended or session stopped while waiting
	}
	err = st.Send(ctx, msg)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, netlink.ErrCrashed):
		// Station crash wiped the transfer; outbox resubmits.
		s.resubmits.Inc()
		return err
	case errors.Is(err, netlink.ErrClosed) && ctx.Err() == nil:
		// The incarnation was torn down under us (watchdog or explicit
		// restart), not the session: resubmit on the successor.
		s.resubmits.Inc()
		return fmt.Errorf("%w: %v", errRestarted, err)
	default:
		return err
	}
}

// fanout forwards a health transition to every subscriber without
// blocking the supervisor: a slow subscriber loses old transitions, not
// the supervisor's time.
func (s *Session) fanout(tr supervise.Transition) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for _, c := range s.subs {
		select {
		case c <- tr:
		default:
		}
	}
}

// Enqueue accepts a payload for supervised delivery and returns its queue
// id. With a WAL the payload is durable before Enqueue returns.
func (s *Session) Enqueue(msg []byte) (uint64, error) { return s.q.Enqueue(msg) }

// Flush blocks until the backlog is fully confirmed, the queue fails
// fatally, or ctx ends. Restarts are not failures: Flush rides through
// them.
func (s *Session) Flush(ctx context.Context) error { return s.q.Flush(ctx) }

// Err returns the queue's sticky fatal error, if any.
func (s *Session) Err() error { return s.q.Err() }

// Health returns the supervisor's current health state.
func (s *Session) Health() supervise.Health { return s.sup.Health() }

// Subscribe registers a health-transition listener. The channel is
// buffered; transitions overflowing the buffer are dropped. It is closed
// by Session.Close.
func (s *Session) Subscribe() <-chan supervise.Transition {
	c := make(chan supervise.Transition, 16)
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.subbed {
		close(c) // already closed session: a closed channel, not a leak
		return c
	}
	s.subs = append(s.subs, c)
	return c
}

// Stats snapshots the session's counters.
func (s *Session) Stats() Stats {
	qs := s.q.Stats()
	ss := s.sup.Stats()
	return Stats{
		Enqueued:      qs.Enqueued,
		Sent:          qs.Sent,
		Resubmits:     qs.Resubmits,
		Pending:       qs.Pending,
		Restarts:      ss.Restarts,
		StartFailures: ss.StartFailures,
		Wedges:        ss.Wedges,
		BreakerOpens:  ss.BreakerOpens,
		Generation:    s.sup.Generation(),
		Health:        s.sup.Health(),
	}
}

// Crash erases the live incarnation's memory (crash^T) without tearing
// it down — the protocol-level fault, for tests and chaos harnesses. The
// outbox resubmits whatever was wiped. No-op between incarnations.
func (s *Session) Crash() {
	if st, ok := s.sup.Peek(); ok {
		st.Crash()
	}
}

// Close stops the session: the queue first (unblocking any in-flight
// send), then the supervisor (tearing down the incarnation), then the
// subscription channels.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.q.Close()
		s.sup.Close()
		s.subMu.Lock()
		s.subbed = true
		for _, c := range s.subs {
			close(c)
		}
		s.subs = nil
		s.subMu.Unlock()
	})
	return s.closeErr
}
