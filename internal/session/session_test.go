package session

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ghm/internal/metrics"
	"ghm/internal/netlink"
	"ghm/internal/supervise"
	"ghm/internal/verify"
)

// rig is a session wired to a plain receiver over a SharedConn, with a
// live conformance checker on both taps.
type rig struct {
	shared *netlink.SharedConn
	r      *netlink.Receiver
	s      *Session
	live   *verify.Live
	drain  sync.WaitGroup

	mu  sync.Mutex
	got []string
}

func (g *rig) delivered() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.got...)
}

func newRig(t *testing.T, mut func(*Config)) *rig {
	t.Helper()
	a, b := netlink.Pipe(netlink.PipeConfig{Seed: 1})
	g := &rig{shared: netlink.NewSharedConn(a), live: &verify.Live{}}

	var err error
	g.r, err = netlink.NewReceiver(b, netlink.ReceiverConfig{
		Tap:     g.live.Observe,
		Metrics: metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.drain.Add(1)
	go func() {
		defer g.drain.Done()
		for {
			msg, err := g.r.Recv(context.Background())
			if err != nil {
				return
			}
			g.mu.Lock()
			g.got = append(g.got, string(msg))
			g.mu.Unlock()
		}
	}()

	cfg := Config{
		Dial:              g.shared.Attach,
		Tap:               g.live.Observe,
		WatchdogWindow:    150 * time.Millisecond,
		WatchdogInterval:  10 * time.Millisecond,
		RestartBackoff:    5 * time.Millisecond,
		RestartBackoffMax: 40 * time.Millisecond,
		BreakerThreshold:  50,
		BreakerWindow:     10 * time.Second,
		BreakerCooldown:   100 * time.Millisecond,
		Seed:              42,
		Metrics:           metrics.New(),
	}
	if mut != nil {
		mut(&cfg)
	}
	g.s, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		g.s.Close()
		g.r.Close()
		g.shared.Close()
		g.drain.Wait()
	})
	return g
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSessionDeliversInOrder(t *testing.T) {
	g := newRig(t, nil)
	for i := 0; i < 10; i++ {
		if _, err := g.s.Enqueue([]byte(fmt.Sprintf("m-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.s.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	st := g.s.Stats()
	if st.Sent != 10 || st.Pending != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// The last OK can precede the drain goroutine's pickup: wait briefly.
	deadline := time.Now().Add(2 * time.Second)
	for len(g.delivered()) < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	delivered := g.delivered()
	if len(delivered) != 10 || delivered[0] != "m-00" || delivered[9] != "m-09" {
		t.Fatalf("delivered %v", delivered)
	}
	if rep := g.live.Report(); !rep.Clean() {
		t.Fatalf("conformance: %v", rep)
	}
}

func TestSessionSurvivesStationCrashes(t *testing.T) {
	g := newRig(t, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			g.s.Crash() // protocol-level crash^T, memory erased
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for i := 0; i < 30; i++ {
		if _, err := g.s.Enqueue([]byte(fmt.Sprintf("c-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if err := g.s.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if st := g.s.Stats(); st.Sent != 30 {
		t.Fatalf("stats: %+v", st)
	}
	if rep := g.live.Report(); !rep.Clean() {
		t.Fatalf("conformance: %v", rep)
	}
}

func TestWatchdogRestartsWedgedStation(t *testing.T) {
	g := newRig(t, nil)

	// Confirm one message so the first incarnation is demonstrably live.
	if _, err := g.s.Enqueue([]byte("warmup")); err != nil {
		t.Fatal(err)
	}
	if err := g.s.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}

	sub := g.s.Subscribe()
	g.shared.WedgeCurrent() // half-dead socket: sends vanish, no progress

	if _, err := g.s.Enqueue([]byte("stuck-then-saved")); err != nil {
		t.Fatal(err)
	}
	if err := g.s.Flush(testCtx(t)); err != nil {
		t.Fatalf("flush across wedge: %v (stats %+v)", err, g.s.Stats())
	}

	st := g.s.Stats()
	if st.Wedges < 1 || st.Restarts < 1 {
		t.Fatalf("watchdog did not fire: %+v", st)
	}
	if st.Sent != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// The health machine must have left Healthy and come back.
	var sawDegraded, sawHealthy bool
	for {
		select {
		case tr := <-sub:
			if tr.To == supervise.Degraded || tr.To == supervise.Partitioned {
				sawDegraded = true
			}
			if sawDegraded && tr.To == supervise.Healthy {
				sawHealthy = true
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("transitions incomplete: degraded=%v healthy=%v", sawDegraded, sawHealthy)
		}
		if sawDegraded && sawHealthy {
			break
		}
	}
	if rep := g.live.Report(); !rep.Clean() {
		t.Fatalf("conformance: %v", rep)
	}
}

func TestSessionWALPersistsAcrossSessions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.wal")

	// First life: enqueue while the socket is wedged so nothing confirms,
	// then close. The backlog must survive in the WAL.
	g1 := newRig(t, func(c *Config) { c.WALPath = path })
	g1.shared.WedgeCurrent()
	for i := 0; i < 3; i++ {
		if _, err := g1.s.Enqueue([]byte(fmt.Sprintf("wal-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	g1.s.Close()

	// Second life on a fresh link: the backlog drains by itself.
	g2 := newRig(t, func(c *Config) { c.WALPath = path })
	if err := g2.s.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if st := g2.s.Stats(); st.Sent < 3 {
		t.Fatalf("recovered backlog not sent: %+v", st)
	}
}

func TestBreakerOpensWhenDialFails(t *testing.T) {
	reg := metrics.New()
	s, err := New(Config{
		Dial: func() (netlink.PacketConn, error) {
			return nil, fmt.Errorf("no route")
		},
		WatchdogWindow:    50 * time.Millisecond,
		WatchdogInterval:  5 * time.Millisecond,
		RestartBackoff:    time.Millisecond,
		RestartBackoffMax: 2 * time.Millisecond,
		BreakerThreshold:  3,
		BreakerWindow:     10 * time.Second,
		BreakerCooldown:   10 * time.Second,
		Seed:              7,
		Metrics:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := s.Stats(); st.BreakerOpens >= 1 && st.Health == supervise.Down {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("breaker never opened: %+v", s.Stats())
}

func TestSubscribeAfterCloseReturnsClosedChannel(t *testing.T) {
	g := newRig(t, nil)
	g.s.Close()
	sub := g.s.Subscribe()
	select {
	case _, ok := <-sub:
		if ok {
			t.Fatal("closed-session subscription yielded a transition")
		}
	case <-time.After(time.Second):
		t.Fatal("closed-session subscription not closed")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing Dial accepted")
	}
}

// TestSubscribeFanoutDuringProbeRace hammers Subscribe registration and
// the supervisor's health fanout concurrently across a full breaker
// cycle — open on persistent dial failure, then a probe incarnation that
// heals. Run under -race it pins the subscriber bookkeeping: fanout
// iterates the subscriber list from the supervisor goroutine while new
// subscribers register from many others, right through the probe.
func TestSubscribeFanoutDuringProbeRace(t *testing.T) {
	a, b := netlink.Pipe(netlink.PipeConfig{Seed: 21})
	shared := netlink.NewSharedConn(a)
	r, err := netlink.NewReceiver(b, netlink.ReceiverConfig{Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	var drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		for {
			if _, err := r.Recv(context.Background()); err != nil {
				return
			}
		}
	}()

	var dialOK atomic.Bool
	s, err := New(Config{
		Dial: func() (netlink.PacketConn, error) {
			if !dialOK.Load() {
				return nil, fmt.Errorf("no route")
			}
			return shared.Attach()
		},
		WatchdogWindow:    60 * time.Millisecond,
		WatchdogInterval:  5 * time.Millisecond,
		RestartBackoff:    time.Millisecond,
		RestartBackoffMax: 2 * time.Millisecond,
		BreakerThreshold:  3,
		BreakerWindow:     10 * time.Second,
		BreakerCooldown:   30 * time.Millisecond,
		Seed:              21,
		Metrics:           metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s.Close()
		r.Close()
		shared.Close()
		drain.Wait()
	}()

	// Subscribers churn for the whole breaker cycle: half drain until
	// their channel closes, half abandon their channel immediately — the
	// abandoned ones must cost nothing (non-blocking fanout).
	stopChurn := make(chan struct{})
	var churn, drains sync.WaitGroup
	for i := 0; i < 4; i++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for {
				select {
				case <-stopChurn:
					return
				default:
				}
				c := s.Subscribe()
				drains.Add(1)
				go func() {
					defer drains.Done()
					for range c {
					}
				}()
				_ = s.Subscribe() // abandoned on purpose
				time.Sleep(time.Millisecond)
			}
		}()
	}

	waitFor := func(what string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !pred() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (stats %+v)", what, s.Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor("breaker open", func() bool { return s.Stats().BreakerOpens >= 1 })

	// Heal the link: the next admitted incarnation is the breaker's
	// half-open probe; committing a transfer closes the breaker while the
	// churn keeps registering subscribers.
	dialOK.Store(true)
	if _, err := s.Enqueue([]byte("probe-payload")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Flush(ctx); err != nil {
		t.Fatalf("flush through probe: %v (stats %+v)", err, s.Stats())
	}
	waitFor("healthy", func() bool { return s.Health() == supervise.Healthy })

	close(stopChurn)
	churn.Wait()
	s.Close() // closes every subscriber channel; draining goroutines exit
	drains.Wait()
}

// TestWindowedSessionSurvivesCrashesAndRestart runs a Window>1 session
// against a long-lived windowed receiver, with protocol crashes and a
// wedge-forced station rebuild in the middle. The rebuild is the hard
// part: the fresh incarnation's admission seqs restart at zero, and only
// the incarnation epoch keeps the surviving receiver from dropping the
// whole new stream as duplicates (the session would wedge forever).
// Delivery across restarts is at-least-once, so the assertion is every
// payload delivered one or more times, and nothing else.
func TestWindowedSessionSurvivesCrashesAndRestart(t *testing.T) {
	const window, n = 4, 40
	a, b := netlink.Pipe(netlink.PipeConfig{Seed: 7})
	shared := netlink.NewSharedConn(a)
	defer shared.Close()

	r, err := netlink.NewWindowedReceiver(b, netlink.WindowedReceiverConfig{
		Window:        window,
		RetryInterval: 200 * time.Microsecond,
		Metrics:       metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var mu sync.Mutex
	got := map[string]int{}
	var drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		for {
			msg, err := r.Recv(context.Background())
			if err != nil {
				return
			}
			mu.Lock()
			got[string(msg)]++
			mu.Unlock()
		}
	}()

	s, err := New(Config{
		Dial:              shared.Attach,
		Window:            window,
		WatchdogWindow:    150 * time.Millisecond,
		WatchdogInterval:  10 * time.Millisecond,
		RestartBackoff:    5 * time.Millisecond,
		RestartBackoffMax: 40 * time.Millisecond,
		BreakerThreshold:  50,
		BreakerWindow:     10 * time.Second,
		BreakerCooldown:   100 * time.Millisecond,
		Seed:              43,
		Metrics:           metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Confirm one payload first so the incarnation is demonstrably live
	// before faults are injected (Crash and WedgeCurrent no-op while the
	// supervisor is still dialing).
	if _, err := s.Enqueue([]byte("w-warmup")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.Enqueue([]byte(fmt.Sprintf("w-%02d", i))); err != nil {
			t.Fatal(err)
		}
		switch i {
		case 10:
			s.Crash() // crash^T: the whole window's slots wiped at once
		case 20:
			shared.WedgeCurrent() // force a watchdog rebuild mid-stream
		case 30:
			s.Crash()
		}
	}
	if err := s.Flush(testCtx(t)); err != nil {
		t.Fatalf("flush: %v (stats %+v)", err, s.Stats())
	}
	if st := s.Stats(); st.Sent != n+1 || st.Pending != 0 || st.Restarts < 1 {
		t.Fatalf("stats: %+v (want Sent=%d, a restart)", st, n+1)
	}

	// The last OK can precede the drain pickup; wait for the counts.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		c := len(got)
		mu.Unlock()
		if c >= n+1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("w-%02d", i)
		if got[key] < 1 {
			t.Errorf("payload %q never delivered", key)
		}
	}
	if len(got) != n+1 { // the n payloads plus the warmup
		t.Errorf("delivered %d distinct payloads, want %d", len(got), n+1)
	}
}
