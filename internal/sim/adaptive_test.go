package sim

import (
	"math/rand"
	"testing"

	"ghm/internal/adversary"
	"ghm/internal/core"
)

// The adaptive strategies are the sharpest oblivious attacks the model
// admits; these tests run each against the real protocol and require the
// Section 2.6 report to stay clean. Liveness is asserted only when the
// composition includes Fair (Axiom 3); the unfair compositions assert
// safety alone.

func TestReplayUnderBoundStaysSafe(t *testing.T) {
	adv := adversary.Compose(
		fair(11, adversary.FairConfig{}),
		adversary.NewReplayUnderBound(rand.New(rand.NewSource(12)), adversary.ReplayUnderBoundConfig{
			// An aggressive misreading of the victim's schedule: permit 8
			// replays per level regardless of t, far over the real bound at
			// low levels, to stress the error counters too.
			Bound: func(int) int { return 9 },
			Rate:  3,
		}),
	)
	res, err := RunGHM(Config{Messages: 40, MaxSteps: 400_000, Adversary: adv}, core.Params{}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("did not complete under replay-under-bound: %+v", res.Report)
	}
	if !res.Report.Clean() {
		t.Fatalf("violations: %v", res.Report)
	}
}

func TestReplayUnderBoundPaperScheduleStaysSafe(t *testing.T) {
	// With the victim's true schedule the flood paces itself below every
	// extension trigger — the attack the tuner must price in.
	rub := adversary.NewReplayUnderBound(rand.New(rand.NewSource(21)), adversary.ReplayUnderBoundConfig{Rate: 4})
	adv := adversary.Compose(fair(22, adversary.FairConfig{Loss: 0.2}), rub)
	res, err := RunGHM(Config{Messages: 40, MaxSteps: 400_000, Adversary: adv}, core.Params{}, 23)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || !res.Report.Clean() {
		t.Fatalf("Done=%v report=%v", res.Done, res.Report)
	}
}

func TestExtensionBurstStaysSafe(t *testing.T) {
	// Loss forces retransmissions and extensions, giving the burst its
	// boundaries to aim at.
	adv := adversary.Compose(
		fair(31, adversary.FairConfig{Loss: 0.3}),
		adversary.NewExtensionBurst(rand.New(rand.NewSource(32)), adversary.ExtensionBurstConfig{
			Rate:  8,
			Steps: 6,
		}),
	)
	res, err := RunGHM(Config{Messages: 40, MaxSteps: 400_000, Adversary: adv}, core.Params{}, 33)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("did not complete under extension bursts: %+v", res.Report)
	}
	if !res.Report.Clean() {
		t.Fatalf("violations: %v", res.Report)
	}
}

func TestCrashTimerStaysSafe(t *testing.T) {
	adv := adversary.Compose(
		fair(41, adversary.FairConfig{}),
		adversary.NewCrashTimer(adversary.CrashTimerConfig{
			OnGrow:   true,
			OnShrink: true,
			CrashT:   true,
			CrashR:   true,
			Cooldown: 200,
			Max:      8,
		}),
	)
	res, err := RunGHM(Config{Messages: 40, MaxSteps: 600_000, Adversary: adv}, core.Params{}, 43)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("did not complete under length-keyed crashes: %+v", res.Report)
	}
	if !res.Report.Clean() {
		t.Fatalf("violations: %v", res.Report)
	}
	if res.Report.CrashT == 0 && res.Report.CrashR == 0 {
		t.Fatalf("crash timer never fired: %v", res.Report)
	}
}

func TestAdaptiveGauntletStaysSafe(t *testing.T) {
	// All three adaptive strategies at once, plus a lossy fair floor. The
	// combined adversary is unfair in bursts but fair overall, so the run
	// must complete and must stay clean.
	adv := adversary.Compose(
		fair(51, adversary.FairConfig{Loss: 0.2, DupProb: 0.2}),
		adversary.NewReplayUnderBound(rand.New(rand.NewSource(52)), adversary.ReplayUnderBoundConfig{Rate: 2}),
		adversary.NewExtensionBurst(rand.New(rand.NewSource(53)), adversary.ExtensionBurstConfig{Rate: 4}),
		adversary.NewCrashTimer(adversary.CrashTimerConfig{
			CrashR:   true,
			Blackout: 50,
			Cooldown: 500,
			Max:      4,
		}),
	)
	res, err := RunGHM(Config{Messages: 50, MaxSteps: 1_000_000, Adversary: adv}, core.Params{}, 54)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("gauntlet stalled: %+v", res.Report)
	}
	if !res.Report.Clean() {
		t.Fatalf("violations: %v", res.Report)
	}
}

func TestBlackoutStallsButStaysSafe(t *testing.T) {
	// A permanent blackout from step 100 on: nothing delivers afterwards,
	// so the run cannot complete — but losing every packet is within the
	// adversary's rights and no condition is violated.
	adv := adversary.Compose(
		fair(61, adversary.FairConfig{}),
		&adversary.Scripted{Schedule: map[int][]adversary.Action{
			100: {{Kind: adversary.ActBlackout, Dur: 1 << 30}},
		}},
	)
	res, err := RunGHM(Config{Messages: 1_000, MaxSteps: 20_000, Adversary: adv}, core.Params{}, 62)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done {
		t.Fatal("completed 1000 messages through a permanent blackout")
	}
	if !res.Report.Clean() {
		t.Fatalf("blackout broke safety: %v", res.Report)
	}
}

func TestBlackoutExpires(t *testing.T) {
	// A finite blackout only delays: deliveries resume when it lifts.
	adv := adversary.Compose(
		fair(71, adversary.FairConfig{}),
		&adversary.Scripted{Schedule: map[int][]adversary.Action{
			10: {{Kind: adversary.ActBlackout, Dur: 300}},
		}},
	)
	res, err := RunGHM(Config{Messages: 20, MaxSteps: 200_000, Adversary: adv}, core.Params{}, 72)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || !res.Report.Clean() {
		t.Fatalf("Done=%v report=%v", res.Done, res.Report)
	}
}
