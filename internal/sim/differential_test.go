package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"ghm/internal/adversary"
	"ghm/internal/baseline"
	"ghm/internal/core"
	"ghm/internal/trace"
)

// TestDifferentialGHMvsStenning is a differential oracle: on crash-free
// channels, Stenning's unbounded-sequence-number protocol is a known-good
// reference (deterministically correct under loss, duplication and
// reordering), so GHM must produce exactly the same external behaviour —
// every message delivered exactly once, in order — under the same family
// of adversary schedules. Divergence in either direction would expose a
// bug in the protocol or in the harness.
func TestDifferentialGHMvsStenning(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mkAdv := func(salt int64) adversary.Adversary {
				r := rand.New(rand.NewSource(seed*31 + salt))
				return adversary.NewFair(r, adversary.FairConfig{
					Loss:        r.Float64() * 0.5,
					DupProb:     r.Float64() * 0.5,
					DeliverProb: 0.2 + r.Float64()*0.8,
				})
			}
			const messages = 60

			gtx, grx, err := NewGHMPair(core.Params{}, seed*7+1)
			if err != nil {
				t.Fatal(err)
			}
			ghmRes := Run(Config{
				Messages:  messages,
				MaxSteps:  2_000_000,
				Adversary: mkAdv(1),
				KeepTrace: true,
			}, gtx, grx)

			stenRes := Run(Config{
				Messages:  messages,
				MaxSteps:  2_000_000,
				Adversary: mkAdv(1), // identical adversary distribution
				KeepTrace: true,
			}, baseline.NewSeqTx(), baseline.NewSeqRx())

			for name, res := range map[string]Result{"ghm": ghmRes, "stenning": stenRes} {
				if !res.Done {
					t.Fatalf("%s did not complete", name)
				}
				if !res.Report.Clean() {
					t.Fatalf("%s violated: %v", name, res.Report)
				}
			}

			// The external behaviours must be identical: same delivered
			// sequence, exactly the submitted order.
			ghmSeq := deliveredSequence(t, ghmRes)
			stenSeq := deliveredSequence(t, stenRes)
			if len(ghmSeq) != messages || len(stenSeq) != messages {
				t.Fatalf("delivery counts: ghm=%d stenning=%d", len(ghmSeq), len(stenSeq))
			}
			for i := range ghmSeq {
				want := fmt.Sprintf("m-%06d", i)
				if ghmSeq[i] != want || stenSeq[i] != want {
					t.Fatalf("position %d: ghm=%q stenning=%q want %q",
						i, ghmSeq[i], stenSeq[i], want)
				}
			}
		})
	}
}

// deliveredSequence extracts the receive_msg payloads in order.
func deliveredSequence(t *testing.T, res Result) []string {
	t.Helper()
	var seq []string
	for _, e := range res.Events {
		if e.Kind == trace.KindReceiveMsg && e.Msg != "" {
			seq = append(seq, e.Msg)
		}
	}
	return seq
}
