package sim

import (
	"math/rand"

	"ghm/internal/bitstr"
	"ghm/internal/core"
)

// GHMTx adapts core.Transmitter to the TxMachine interface.
type GHMTx struct {
	T *core.Transmitter
}

var (
	_ TxMachine    = GHMTx{}
	_ StorageMeter = GHMTx{}
)

// SendMsg implements TxMachine.
func (g GHMTx) SendMsg(m []byte) ([][]byte, error) {
	out, err := g.T.SendMsg(m)
	if err != nil {
		return nil, err
	}
	return out.Packets, nil
}

// ReceivePacket implements TxMachine.
func (g GHMTx) ReceivePacket(p []byte) ([][]byte, bool) {
	out := g.T.ReceivePacket(p)
	return out.Packets, out.OK
}

// Crash implements TxMachine.
func (g GHMTx) Crash() { g.T.Crash() }

// Busy implements TxMachine.
func (g GHMTx) Busy() bool { return g.T.Busy() }

// StorageBits implements StorageMeter: the current tag length.
func (g GHMTx) StorageBits() int { return g.T.TauLen() }

// GHMRx adapts core.Receiver to the RxMachine interface.
type GHMRx struct {
	R *core.Receiver
}

var (
	_ RxMachine    = GHMRx{}
	_ StorageMeter = GHMRx{}
)

// ReceivePacket implements RxMachine.
func (g GHMRx) ReceivePacket(p []byte) ([][]byte, [][]byte) {
	out := g.R.ReceivePacket(p)
	return out.Delivered, out.Packets
}

// Retry implements RxMachine.
func (g GHMRx) Retry() [][]byte { return g.R.Retry().Packets }

// Crash implements RxMachine.
func (g GHMRx) Crash() { g.R.Crash() }

// StorageBits implements StorageMeter: the current challenge length.
func (g GHMRx) StorageBits() int { return g.R.RhoLen() }

// NewGHMPair builds a transmitter/receiver pair with deterministic
// randomness derived from seed. Zero fields of p take core defaults except
// Source, which is always replaced by seeded math sources (one per
// station) for reproducibility.
func NewGHMPair(p core.Params, seed int64) (GHMTx, GHMRx, error) {
	pt := p
	pt.Source = bitstr.NewMathSource(rand.New(rand.NewSource(seed)))
	pr := p
	pr.Source = bitstr.NewMathSource(rand.New(rand.NewSource(seed + 0x9e3779b9)))
	tx, err := core.NewTransmitter(pt)
	if err != nil {
		return GHMTx{}, GHMRx{}, err
	}
	rx, err := core.NewReceiver(pr)
	if err != nil {
		return GHMTx{}, GHMRx{}, err
	}
	return GHMTx{T: tx}, GHMRx{R: rx}, nil
}

// RunGHM is a convenience wrapper: build a GHM pair seeded by seed and
// simulate it under cfg.
func RunGHM(cfg Config, p core.Params, seed int64) (Result, error) {
	tx, rx, err := NewGHMPair(p, seed)
	if err != nil {
		return Result{}, err
	}
	return Run(cfg, tx, rx), nil
}
