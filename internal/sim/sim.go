// Package sim composes the protocol stations, the communication channels
// and an adversary into the system of the paper's Figure 1, and runs it as
// a deterministic discrete-event simulation.
//
// The simulator is single-threaded: one logical step sends any pending
// higher-layer message, fires the receiver's RETRY action, and applies the
// adversary's delivery and crash decisions. Every externally visible
// action is recorded in a trace log, which is checked against the
// Section 2.6 correctness conditions by ghm/internal/verify.
//
// Stations are plugged in through the TxMachine/RxMachine interfaces, so
// the same harness runs both the paper's protocol (ghm/internal/core) and
// the comparison baselines (ghm/internal/baseline).
package sim

import (
	"fmt"

	"ghm/internal/adversary"
	"ghm/internal/channel"
	"ghm/internal/trace"
	"ghm/internal/verify"
)

// TxMachine is a pluggable transmitting station.
type TxMachine interface {
	// SendMsg accepts the next higher-layer message; it may emit packets.
	SendMsg(m []byte) ([][]byte, error)
	// ReceivePacket processes one packet from the R->T channel; ok
	// reports the OK action.
	ReceivePacket(p []byte) (pkts [][]byte, ok bool)
	// Crash erases all state (crash^T).
	Crash()
	// Busy reports whether a message is in flight.
	Busy() bool
}

// RxMachine is a pluggable receiving station.
type RxMachine interface {
	// ReceivePacket processes one packet from the T->R channel, returning
	// delivered messages and packets to send.
	ReceivePacket(p []byte) (delivered [][]byte, pkts [][]byte)
	// Retry fires the internal RETRY action.
	Retry() [][]byte
	// Crash erases all state (crash^R).
	Crash()
}

// TxTicker is optionally implemented by transmitting stations that
// retransmit on a timer. The paper's transmitter is purely reactive (the
// receiver's RETRY drives liveness), but the deterministic baselines are
// transmitter-driven stop-and-wait protocols and need this hook. It fires
// on the RetryEvery schedule.
type TxTicker interface {
	Tick() [][]byte
}

// StorageMeter is optionally implemented by machines to report the random
// string (or counter) storage they currently hold, in bits. The simulator
// samples it for the storage experiments (E5).
type StorageMeter interface {
	StorageBits() int
}

// Config parameterizes one simulation run.
type Config struct {
	// Messages is the number of unique messages to push through.
	Messages int
	// Payload generates the i-th message body; bodies must be unique
	// (Axiom 2). Defaults to "m-%06d".
	Payload func(i int) []byte
	// RetryEvery fires the receiver's RETRY action every so many steps.
	// Defaults to 1.
	RetryEvery int
	// MaxSteps bounds the run; a run that does not complete all messages
	// within it reports Completed=false. Defaults to 1_000_000.
	MaxSteps int
	// Adversary schedules deliveries and crashes. Required.
	Adversary adversary.Adversary
	// KeepTrace retains the full event log in the result (it can be
	// large); the verification report is always computed.
	KeepTrace bool
}

// PerMessage records accounting for one attempted message.
type PerMessage struct {
	SendStep  int  // step of the send_msg action
	DoneStep  int  // step of the OK (or crash^T abandon); -1 if never
	OK        bool // completed with OK rather than abandoned
	PacketsTR int  // DATA packets sent while this message was in flight
	PacketsRT int  // CTL packets sent while this message was in flight
	MaxTxBits int  // max transmitter storage during the window
	MaxRxBits int  // max receiver storage during the window
}

// Result summarizes one simulation run.
type Result struct {
	// Report is the Section 2.6 verification of the recorded execution.
	Report verify.Report
	// Events is the execution (only when Config.KeepTrace).
	Events []trace.Event
	// Attempted and Completed count messages pushed and OK'd.
	Attempted, Completed int
	// Steps is the number of simulated steps consumed.
	Steps int
	// Done reports that all messages completed within MaxSteps.
	Done bool
	// PacketsTR/RT count send_pkt actions per channel; DeliveredTR/RT
	// count deliver_pkt actions (duplicates included).
	PacketsTR, PacketsRT, DeliveredTR, DeliveredRT int
	// PerMessage has one entry per attempted message.
	PerMessage []PerMessage
	// MaxTxBits/MaxRxBits are the storage high-water marks over the run.
	MaxTxBits, MaxRxBits int
}

// Run simulates the composed system until all messages complete or the
// step budget is exhausted.
func Run(cfg Config, tx TxMachine, rx RxMachine) Result {
	if cfg.Payload == nil {
		cfg.Payload = func(i int) []byte { return []byte(fmt.Sprintf("m-%06d", i)) }
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 1
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 1_000_000
	}
	if cfg.Adversary == nil {
		cfg.Adversary = adversary.Silence{}
	}

	s := &runner{
		cfg:  cfg,
		tx:   tx,
		rx:   rx,
		chTR: channel.New(trace.DirTR),
		chRT: channel.New(trace.DirRT),
	}
	return s.run()
}

type runner struct {
	cfg     Config
	tx      TxMachine
	rx      RxMachine
	chTR    *channel.Channel
	chRT    *channel.Channel
	log     trace.Log // populated only when cfg.KeepTrace
	checker verify.Checker
	res     Result
	step    int
	cur     int // index into PerMessage of the in-flight message, -1 if none
	// blackoutUntil is the first step at which deliveries resume after an
	// ActBlackout; releases attempted during the window are lost.
	blackoutUntil int
}

// record streams an event to the verifier and, when requested, the log.
// Streaming (rather than retaining the full log) keeps hostile runs --
// tens of millions of packet events -- in constant memory.
func (s *runner) record(e trace.Event) {
	s.checker.Observe(e)
	if s.cfg.KeepTrace {
		s.log.Append(e)
	}
}

func (s *runner) run() Result {
	s.cur = -1
	for s.step = 0; s.step < s.cfg.MaxSteps; s.step++ {
		// Higher layer: Axiom 1 lets us submit only after OK or crash^T.
		if !s.tx.Busy() && s.res.Attempted < s.cfg.Messages {
			s.submit()
		}

		// Internal RETRY action of the receiving station.
		if s.step%s.cfg.RetryEvery == 0 {
			s.record(trace.Event{Step: s.step, Kind: trace.KindRetry})
			s.routeRT(s.rx.Retry())
			if tk, ok := s.tx.(TxTicker); ok {
				s.routeTR(tk.Tick())
			}
		}

		// Forgeries (channels without the causality axiom): fabricated
		// packets enter the channel and are delivered immediately.
		if f, ok := s.cfg.Adversary.(adversary.PacketForger); ok {
			for _, fg := range f.Forge(s.step) {
				s.inject(fg)
			}
		}

		// Adversary decisions.
		for _, act := range s.cfg.Adversary.Next(s.step) {
			s.apply(act)
		}

		s.sampleStorage()

		if s.res.Attempted == s.cfg.Messages && !s.tx.Busy() {
			s.res.Done = true
			s.step++
			break
		}
	}

	s.res.Steps = s.step
	s.res.Report = s.checker.Report()
	if s.cfg.KeepTrace {
		s.res.Events = s.log.Events()
	}
	return s.res
}

func (s *runner) submit() {
	m := s.cfg.Payload(s.res.Attempted)
	pkts, err := s.tx.SendMsg(m)
	if err != nil {
		// Busy was checked; any error here is a machine bug surfaced to
		// the caller through a failed run rather than a panic.
		return
	}
	s.res.Attempted++
	s.res.PerMessage = append(s.res.PerMessage, PerMessage{SendStep: s.step, DoneStep: -1})
	s.cur = len(s.res.PerMessage) - 1
	s.record(trace.Event{Step: s.step, Kind: trace.KindSendMsg, Msg: string(m)})
	s.routeTR(pkts)
}

// inject places a forged packet on the channel and delivers it at once;
// it also notifies the adversary, which may replay the forgery later like
// any other packet.
func (s *runner) inject(fg adversary.Forgery) {
	switch fg.Dir {
	case trace.DirTR:
		id, l := s.chTR.Inject(fg.Packet)
		s.cfg.Adversary.OnNewPacket(trace.DirTR, id, l)
		s.apply(adversary.Action{Kind: adversary.ActDeliver, Dir: trace.DirTR, ID: id})
	case trace.DirRT:
		id, l := s.chRT.Inject(fg.Packet)
		s.cfg.Adversary.OnNewPacket(trace.DirRT, id, l)
		s.apply(adversary.Action{Kind: adversary.ActDeliver, Dir: trace.DirRT, ID: id})
	}
}

func (s *runner) apply(act adversary.Action) {
	switch act.Kind {
	case adversary.ActDeliver:
		if s.step < s.blackoutUntil {
			return // the link is dark: the release is a loss
		}
		switch act.Dir {
		case trace.DirTR:
			p, ok := s.chTR.Deliver(act.ID)
			if !ok {
				return
			}
			s.res.DeliveredTR++
			s.record(trace.Event{Step: s.step, Kind: trace.KindDeliverPkt,
				Dir: trace.DirTR, PktID: act.ID, PktLen: len(p)})
			delivered, pkts := s.rx.ReceivePacket(p)
			for _, m := range delivered {
				s.record(trace.Event{Step: s.step, Kind: trace.KindReceiveMsg, Msg: string(m)})
			}
			s.routeRT(pkts)
		case trace.DirRT:
			p, ok := s.chRT.Deliver(act.ID)
			if !ok {
				return
			}
			s.res.DeliveredRT++
			s.record(trace.Event{Step: s.step, Kind: trace.KindDeliverPkt,
				Dir: trace.DirRT, PktID: act.ID, PktLen: len(p)})
			pkts, okAction := s.tx.ReceivePacket(p)
			if okAction {
				s.record(trace.Event{Step: s.step, Kind: trace.KindOK})
				s.finish(true)
			}
			s.routeTR(pkts)
		}

	case adversary.ActCrashT:
		s.tx.Crash()
		s.record(trace.Event{Step: s.step, Kind: trace.KindCrashT})
		s.finish(false)

	case adversary.ActCrashR:
		s.rx.Crash()
		s.record(trace.Event{Step: s.step, Kind: trace.KindCrashR})

	case adversary.ActBlackout:
		if until := s.step + act.Dur; until > s.blackoutUntil {
			s.blackoutUntil = until
		}
	}
}

// finish closes the in-flight message's accounting window.
func (s *runner) finish(ok bool) {
	if s.cur < 0 {
		return
	}
	pm := &s.res.PerMessage[s.cur]
	pm.DoneStep = s.step
	pm.OK = ok
	if ok {
		s.res.Completed++
	}
	s.cur = -1
}

func (s *runner) routeTR(pkts [][]byte) {
	for _, p := range pkts {
		id, l := s.chTR.Send(p)
		s.res.PacketsTR++
		if s.cur >= 0 {
			s.res.PerMessage[s.cur].PacketsTR++
		}
		s.record(trace.Event{Step: s.step, Kind: trace.KindSendPkt,
			Dir: trace.DirTR, PktID: id, PktLen: l})
		s.cfg.Adversary.OnNewPacket(trace.DirTR, id, l)
	}
}

func (s *runner) routeRT(pkts [][]byte) {
	for _, p := range pkts {
		id, l := s.chRT.Send(p)
		s.res.PacketsRT++
		if s.cur >= 0 {
			s.res.PerMessage[s.cur].PacketsRT++
		}
		s.record(trace.Event{Step: s.step, Kind: trace.KindSendPkt,
			Dir: trace.DirRT, PktID: id, PktLen: l})
		s.cfg.Adversary.OnNewPacket(trace.DirRT, id, l)
	}
}

func (s *runner) sampleStorage() {
	if m, ok := s.tx.(StorageMeter); ok {
		b := m.StorageBits()
		if b > s.res.MaxTxBits {
			s.res.MaxTxBits = b
		}
		if s.cur >= 0 && b > s.res.PerMessage[s.cur].MaxTxBits {
			s.res.PerMessage[s.cur].MaxTxBits = b
		}
	}
	if m, ok := s.rx.(StorageMeter); ok {
		b := m.StorageBits()
		if b > s.res.MaxRxBits {
			s.res.MaxRxBits = b
		}
		if s.cur >= 0 && b > s.res.PerMessage[s.cur].MaxRxBits {
			s.res.PerMessage[s.cur].MaxRxBits = b
		}
	}
}
