package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"ghm/internal/adversary"
	"ghm/internal/core"
	"ghm/internal/trace"
)

func fair(seed int64, cfg adversary.FairConfig) adversary.Adversary {
	return adversary.NewFair(rand.New(rand.NewSource(seed)), cfg)
}

func TestPerfectChannelCompletesClean(t *testing.T) {
	res, err := RunGHM(Config{
		Messages:  100,
		Adversary: fair(1, adversary.FairConfig{DeliverProb: 1}),
	}, core.Params{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Completed != 100 {
		t.Fatalf("Done=%v Completed=%d", res.Done, res.Completed)
	}
	if !res.Report.Clean() {
		t.Fatalf("violations on perfect channel: %v", res.Report)
	}
	if res.Report.Delivered != 100 {
		t.Fatalf("Delivered = %d", res.Report.Delivered)
	}
}

func TestLossyChannelCompletesClean(t *testing.T) {
	for _, loss := range []float64{0.2, 0.5, 0.8} {
		loss := loss
		t.Run(fmt.Sprintf("loss=%v", loss), func(t *testing.T) {
			res, err := RunGHM(Config{
				Messages:  30,
				MaxSteps:  400_000,
				Adversary: fair(2, adversary.FairConfig{Loss: loss}),
			}, core.Params{}, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Done {
				t.Fatalf("did not complete under loss %v: %+v", loss, res.Report)
			}
			if !res.Report.Clean() {
				t.Fatalf("violations under loss %v: %v", loss, res.Report)
			}
		})
	}
}

func TestDuplicatingReorderingChannelClean(t *testing.T) {
	res, err := RunGHM(Config{
		Messages:  50,
		MaxSteps:  400_000,
		Adversary: fair(3, adversary.FairConfig{Loss: 0.3, DupProb: 0.5, DeliverProb: 0.3}),
	}, core.Params{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("did not complete under dup+reorder")
	}
	if !res.Report.Clean() {
		t.Fatalf("violations under dup+reorder: %v", res.Report)
	}
	if res.DeliveredTR <= res.PacketsTR && res.DeliveredRT <= res.PacketsRT {
		// With DupProb 0.5 we expect more deliveries than sends on at
		// least one channel; if not, duplication never happened.
		t.Logf("note: no observable duplication (TR %d/%d, RT %d/%d)",
			res.DeliveredTR, res.PacketsTR, res.DeliveredRT, res.PacketsRT)
	}
}

func TestCrashLoopStaysSafe(t *testing.T) {
	adv := adversary.Compose(
		fair(4, adversary.FairConfig{Loss: 0.2}),
		&adversary.CrashLoop{EveryT: 23, EveryR: 37},
	)
	res, err := RunGHM(Config{
		Messages:  40,
		MaxSteps:  600_000,
		Adversary: adv,
	}, core.Params{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.CrashT == 0 || res.Report.CrashR == 0 {
		t.Fatalf("crash loop never fired: %v", res.Report)
	}
	// Safety: with epsilon = 2^-20 over 40 messages, expect zero
	// violations; any would be a protocol bug at these odds.
	if !res.Report.Clean() {
		t.Fatalf("violations under crashes: %v", res.Report)
	}
}

func TestReplayFloodStaysSafe(t *testing.T) {
	adv := adversary.Compose(
		fair(5, adversary.FairConfig{}),
		adversary.NewReplay(rand.New(rand.NewSource(6)), trace.DirTR, 5),
		&adversary.CrashLoop{EveryR: 500},
	)
	res, err := RunGHM(Config{
		Messages:  20,
		MaxSteps:  400_000,
		Adversary: adv,
	}, core.Params{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Clean() {
		t.Fatalf("violations under replay flood: %v", res.Report)
	}
}

func TestSilenceNeverCompletes(t *testing.T) {
	res, err := RunGHM(Config{
		Messages:  1,
		MaxSteps:  5_000,
		Adversary: adversary.Silence{},
	}, core.Params{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done || res.Completed != 0 {
		t.Fatalf("completed through a disconnected channel: %+v", res)
	}
	if !res.Report.Clean() {
		t.Fatalf("safety violated by silence: %v", res.Report)
	}
	// Liveness mechanism check: the receiver keeps retrying.
	if res.PacketsRT == 0 {
		t.Error("receiver sent no retries")
	}
}

func TestPartitionRecovers(t *testing.T) {
	adv := &adversary.Partition{
		Inner:  fair(7, adversary.FairConfig{}),
		Period: 2000,
		Off:    1500,
	}
	res, err := RunGHM(Config{
		Messages:  10,
		MaxSteps:  300_000,
		Adversary: adv,
	}, core.Params{}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || !res.Report.Clean() {
		t.Fatalf("partition run: done=%v report=%v", res.Done, res.Report)
	}
}

func TestDeterministicGivenSeeds(t *testing.T) {
	run := func() Result {
		res, err := RunGHM(Config{
			Messages:  20,
			Adversary: fair(13, adversary.FairConfig{Loss: 0.3, DupProb: 0.3}),
		}, core.Params{}, 14)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.PacketsTR != b.PacketsTR || a.PacketsRT != b.PacketsRT ||
		a.DeliveredTR != b.DeliveredTR || a.Completed != b.Completed {
		t.Fatalf("same seeds, different runs:\n%+v\n%+v", a, b)
	}
}

func TestPerMessageAccounting(t *testing.T) {
	res, err := RunGHM(Config{
		Messages:  5,
		Adversary: fair(15, adversary.FairConfig{DeliverProb: 1}),
	}, core.Params{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerMessage) != 5 {
		t.Fatalf("PerMessage entries = %d", len(res.PerMessage))
	}
	var sumTR int
	for i, pm := range res.PerMessage {
		if !pm.OK || pm.DoneStep < pm.SendStep {
			t.Errorf("message %d window: %+v", i, pm)
		}
		if pm.PacketsTR == 0 {
			t.Errorf("message %d sent no DATA packets", i)
		}
		if pm.MaxRxBits == 0 {
			t.Errorf("message %d recorded no receiver storage", i)
		}
		sumTR += pm.PacketsTR
	}
	if sumTR > res.PacketsTR {
		t.Errorf("per-message TR packets %d exceed total %d", sumTR, res.PacketsTR)
	}
	if res.MaxRxBits == 0 || res.MaxTxBits == 0 {
		t.Errorf("storage high-water marks missing: %+v", res)
	}
}

func TestKeepTrace(t *testing.T) {
	res, err := RunGHM(Config{
		Messages:  2,
		Adversary: fair(17, adversary.FairConfig{DeliverProb: 1}),
		KeepTrace: true,
	}, core.Params{}, 18)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("KeepTrace retained no events")
	}
	var sends, oks int
	for _, e := range res.Events {
		switch e.Kind {
		case trace.KindSendMsg:
			sends++
		case trace.KindOK:
			oks++
		}
	}
	if sends != 2 || oks != 2 {
		t.Fatalf("trace has %d sends, %d OKs", sends, oks)
	}
}

func TestTraceOmittedByDefault(t *testing.T) {
	res, err := RunGHM(Config{
		Messages:  2,
		Adversary: fair(19, adversary.FairConfig{DeliverProb: 1}),
	}, core.Params{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != nil {
		t.Fatal("Events retained without KeepTrace")
	}
}

func TestBadParamsSurface(t *testing.T) {
	if _, err := RunGHM(Config{Messages: 1}, core.Params{Epsilon: 2}, 1); err == nil {
		t.Fatal("invalid epsilon accepted")
	}
}

func TestRetryEveryThrottlesControlTraffic(t *testing.T) {
	dense, err := RunGHM(Config{
		Messages: 5, RetryEvery: 1,
		Adversary: fair(21, adversary.FairConfig{DeliverProb: 0.2}),
	}, core.Params{}, 22)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := RunGHM(Config{
		Messages: 5, RetryEvery: 10,
		Adversary: fair(21, adversary.FairConfig{DeliverProb: 0.2}),
	}, core.Params{}, 22)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Done || !sparse.Done {
		t.Fatal("runs did not complete")
	}
	if sparse.PacketsRT >= dense.PacketsRT {
		t.Errorf("RetryEvery=10 sent %d CTL packets, dense sent %d",
			sparse.PacketsRT, dense.PacketsRT)
	}
}
