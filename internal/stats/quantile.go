package stats

import "sort"

// Quantile estimates a single quantile of a stream without storing it,
// using the P-squared algorithm (Jain & Chlamtac 1985): five markers whose
// positions are nudged toward the ideal quantile positions with parabolic
// interpolation. Error is typically well under a percent of the value
// range for unimodal streams; the experiment harness uses it for latency
// percentiles.
//
// The zero value is unusable; create with NewQuantile.
type Quantile struct {
	p       float64
	n       int
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	incr    [5]float64 // desired position increments per observation
	initial []float64  // first five samples before the estimator engages
}

// NewQuantile returns an estimator for the p-quantile (0 < p < 1).
func NewQuantile(p float64) *Quantile {
	if p <= 0 {
		p = 0.0001
	}
	if p >= 1 {
		p = 0.9999
	}
	return &Quantile{
		p:    p,
		want: [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5},
		incr: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// Add records one sample.
func (q *Quantile) Add(x float64) {
	q.n++
	if len(q.initial) < 5 {
		q.initial = append(q.initial, x)
		if len(q.initial) == 5 {
			sort.Float64s(q.initial)
			for i := 0; i < 5; i++ {
				q.heights[i] = q.initial[i]
				q.pos[i] = float64(i + 1)
			}
		}
		return
	}

	// Find the cell containing x and update extreme markers.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if x < q.heights[i] {
				k = i - 1
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.incr[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

// parabolic is the P-squared piecewise-parabolic prediction.
func (q *Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// N returns the number of samples observed.
func (q *Quantile) N() int { return q.n }

// Value returns the current estimate. With fewer than five samples it
// falls back to the exact order statistic of what it has.
func (q *Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if len(q.initial) < 5 {
		tmp := append([]float64(nil), q.initial...)
		sort.Float64s(tmp)
		idx := int(q.p * float64(len(tmp)))
		if idx >= len(tmp) {
			idx = len(tmp) - 1
		}
		return tmp[idx]
	}
	return q.heights[2]
}
