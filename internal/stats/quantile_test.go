package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func exactQuantile(xs []float64, p float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	idx := int(p * float64(len(tmp)))
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

func TestQuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []float64{0.5, 0.9, 0.99} {
		q := NewQuantile(p)
		var xs []float64
		for i := 0; i < 20000; i++ {
			x := rng.Float64() * 1000
			xs = append(xs, x)
			q.Add(x)
		}
		got, want := q.Value(), exactQuantile(xs, p)
		if math.Abs(got-want) > 25 { // 2.5% of range
			t.Errorf("p=%v: estimate %v, exact %v", p, got, want)
		}
		if q.N() != 20000 {
			t.Errorf("N = %d", q.N())
		}
	}
}

func TestQuantileExponentialTail(t *testing.T) {
	// Latency-shaped distribution: exponential with a long tail.
	rng := rand.New(rand.NewSource(2))
	q := NewQuantile(0.95)
	var xs []float64
	for i := 0; i < 30000; i++ {
		x := rng.ExpFloat64() * 10
		xs = append(xs, x)
		q.Add(x)
	}
	got, want := q.Value(), exactQuantile(xs, 0.95)
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("p95: estimate %v, exact %v", got, want)
	}
}

func TestQuantileSmallSamples(t *testing.T) {
	q := NewQuantile(0.5)
	if q.Value() != 0 {
		t.Error("empty estimator nonzero")
	}
	q.Add(5)
	q.Add(1)
	q.Add(3)
	v := q.Value()
	if v < 1 || v > 5 {
		t.Errorf("small-sample median %v outside range", v)
	}
}

func TestQuantileClampedP(t *testing.T) {
	for _, p := range []float64{-1, 0, 1, 2} {
		q := NewQuantile(p)
		for i := 0; i < 100; i++ {
			q.Add(float64(i))
		}
		v := q.Value()
		if v < 0 || v > 99 {
			t.Errorf("p=%v: value %v outside observed range", p, v)
		}
	}
}

func TestQuantileMonotoneAcrossP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q50, q90, q99 := NewQuantile(0.5), NewQuantile(0.9), NewQuantile(0.99)
	for i := 0; i < 10000; i++ {
		x := rng.NormFloat64()*10 + 100
		q50.Add(x)
		q90.Add(x)
		q99.Add(x)
	}
	if !(q50.Value() < q90.Value() && q90.Value() < q99.Value()) {
		t.Errorf("quantiles not ordered: %v %v %v", q50.Value(), q90.Value(), q99.Value())
	}
}
