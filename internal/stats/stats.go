// Package stats provides the small numeric and presentation helpers shared
// by the experiment harness: streaming mean/deviation accumulators and
// fixed-width text tables matching the layout used in EXPERIMENTS.md.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Acc accumulates a stream of float64 samples (Welford's algorithm) and
// reports mean, standard deviation and extrema. The zero value is ready to
// use.
type Acc struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one sample.
func (a *Acc) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// AddInt records one integer sample.
func (a *Acc) AddInt(x int) { a.Add(float64(x)) }

// N returns the number of samples.
func (a *Acc) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Acc) Mean() float64 { return a.mean }

// Std returns the sample standard deviation (0 with fewer than 2 samples).
func (a *Acc) Std() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Min returns the smallest sample (0 with no samples).
func (a *Acc) Min() float64 {
	return a.min
}

// Max returns the largest sample (0 with no samples).
func (a *Acc) Max() float64 {
	return a.max
}

// Table is a fixed-width text table.
type Table struct {
	Title   string
	Note    string // one-line caption under the title
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				io.WriteString(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		io.WriteString(w, "\n")
	}
	writeRow(t.Headers)
	var rule []string
	for _, width := range widths {
		rule = append(rule, strings.Repeat("-", width))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Note)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// F formats a float compactly (trailing zeros trimmed).
func F(x float64) string {
	s := fmt.Sprintf("%.3f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// F1 formats a float with one decimal.
func F1(x float64) string { return fmt.Sprintf("%.1f", x) }

// E formats a probability in scientific-ish style (e.g. "2^-16" inputs
// stay readable as decimals).
func E(x float64) string {
	if x == 0 {
		return "0"
	}
	if x >= 0.001 {
		return F(x)
	}
	return fmt.Sprintf("%.2e", x)
}
