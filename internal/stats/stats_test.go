package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccBasics(t *testing.T) {
	var a Acc
	if a.N() != 0 || a.Mean() != 0 || a.Std() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatal("zero Acc not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Errorf("Mean = %v", a.Mean())
	}
	// Sample std of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(a.Std()-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", a.Std(), want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccAddInt(t *testing.T) {
	var a Acc
	a.AddInt(3)
	a.AddInt(5)
	if a.Mean() != 4 {
		t.Errorf("Mean = %v", a.Mean())
	}
}

func TestAccQuickMeanWithinBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var a Acc
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue // the harness feeds measurement-scale numbers
			}
			a.Add(x)
			n++
		}
		if n == 0 {
			return true
		}
		return a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "E0 demo",
		Note:    "a caption",
		Headers: []string{"proto", "rate"},
	}
	tb.AddRow("ghm", "0.001")
	tb.AddRow("abp")
	out := tb.String()
	for _, want := range []string{"E0 demo", "a caption", "proto", "ghm", "0.001", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Errorf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"a", "b"}}
	tb.AddRow("1", "2")
	md := tb.Markdown()
	for _, want := range []string{"### T", "| a | b |", "|---|---|", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFormatters(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{F(1.5), "1.5"},
		{F(2), "2"},
		{F(0.125), "0.125"},
		{F1(2.04), "2.0"},
		{E(0), "0"},
		{E(0.25), "0.25"},
		{E(1.0 / (1 << 20)), "9.54e-07"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("format = %q, want %q", tt.got, tt.want)
		}
	}
}
