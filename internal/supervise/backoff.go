package supervise

import (
	"math/rand"
	"time"
)

// backoff produces jittered exponential restart delays: attempt n waits
// base<<(n-1) capped at max, then jittered uniformly into [d/2, d] so a
// fleet of supervisors sharing a fault does not restart in lockstep.
type backoff struct {
	base, max time.Duration
	rng       *rand.Rand
}

func (b *backoff) next(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	d := b.base << shift
	if d > b.max || d <= 0 { // <= 0 guards shift overflow
		d = b.max
	}
	return d/2 + time.Duration(b.rng.Int63n(int64(d/2)+1))
}
