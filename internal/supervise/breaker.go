package supervise

import "time"

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// admitVerdict is what allow tells the supervision loop to do.
type admitVerdict int

const (
	admitNone   admitVerdict = iota // breaker open: wait, ask again
	admitNormal                     // breaker closed: start freely
	admitProbe                      // half-open: this start is the probe
)

// breaker counts fruitless restarts in a rolling window; at threshold it
// opens and blocks restarts for cooldown, then admits a single half-open
// probe whose outcome closes or reopens it. Not goroutine-safe: owned by
// the supervision loop.
type breaker struct {
	threshold int // <0 disables the breaker entirely
	window    time.Duration
	cooldown  time.Duration

	state    breakerState
	failures []time.Time // recent failures, pruned to window
	openedAt time.Time
	probing  bool // half-open probe already handed out
}

// allow reports whether a restart may proceed. When the verdict is
// admitNone, wait suggests how long to sleep before asking again.
func (b *breaker) allow(now time.Time) (v admitVerdict, wait time.Duration) {
	if b.threshold < 0 {
		return admitNormal, 0
	}
	switch b.state {
	case breakerClosed:
		return admitNormal, 0
	case breakerOpen:
		if rest := b.cooldown - now.Sub(b.openedAt); rest > 0 {
			if rest > 50*time.Millisecond {
				rest = 50 * time.Millisecond // stay responsive to Close
			}
			return admitNone, rest
		}
		b.state = breakerHalfOpen
		b.probing = false
		fallthrough
	case breakerHalfOpen:
		if b.probing {
			// A probe is already out; its failure path re-opens before the
			// loop ever asks again, so this only guards misuse.
			return admitNone, b.cooldown
		}
		b.probing = true
		return admitProbe, 0
	}
	return admitNormal, 0
}

// failure records one fruitless restart; it returns true when this
// failure opened the breaker.
func (b *breaker) failure(now time.Time) bool {
	if b.threshold < 0 {
		return false
	}
	if b.state == breakerHalfOpen {
		// The probe wedged too: back to open for another cooldown.
		b.state = breakerOpen
		b.openedAt = now
		b.failures = b.failures[:0]
		return true
	}
	b.failures = append(b.failures, now)
	cut := now.Add(-b.window)
	kept := b.failures[:0]
	for _, t := range b.failures {
		if t.After(cut) {
			kept = append(kept, t)
		}
	}
	b.failures = kept
	if b.state == breakerClosed && len(b.failures) >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
		b.failures = b.failures[:0]
		return true
	}
	return false
}

// success records committed progress; it returns true when it closed the
// breaker from half-open (i.e. the probe succeeded).
func (b *breaker) success() bool {
	if b.threshold < 0 {
		return false
	}
	closed := b.state == breakerHalfOpen
	b.state = breakerClosed
	b.probing = false
	b.failures = b.failures[:0]
	return closed
}
