// Package supervise restarts wedged components. The paper's stations are
// built to survive having their memory erased — that is the protocol's
// whole premise — but nothing in the protocol restarts a station whose
// host process lost its goroutines, whose socket went half-dead, or whose
// link partitioned for longer than the application can wait. Supervise is
// that missing layer, in the spirit of the self-stabilizing treatments of
// the same channel model (Dolev et al.): from any fault state, keep
// converging back toward a working incarnation.
//
// A Supervisor owns one restartable incarnation of a component (built by
// a Start callback, torn down by Stop) and layers three mechanisms on it:
//
//   - a progress watchdog: while the component has pending work
//     (Pending() true) but commits no progress (Progress() not called)
//     for a full Window, the incarnation is declared wedged, torn down
//     and rebuilt;
//   - exponential backoff with jitter between consecutive rebuilds, so a
//     persistent fault does not turn into a restart storm;
//   - a restart circuit breaker: after Threshold fruitless restarts
//     inside a rolling window the supervisor stops restarting (open),
//     waits out a cooldown, then lets a single probe incarnation through
//     (half-open); the probe's progress closes the breaker, its failure
//     reopens it.
//
// The supervisor publishes a four-state health machine — Healthy,
// Degraded, Partitioned, Down — through Health, an OnTransition callback
// and the session.* metrics family.
package supervise

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ghm/internal/clock"
	"ghm/internal/engine"
	"ghm/internal/metrics"
)

// ErrStopped reports use of a closed Supervisor.
var ErrStopped = errors.New("supervise: stopped")

// Health is the supervisor's coarse view of the supervised endpoint.
type Health int32

// The health states, ordered by severity.
const (
	// Healthy: the incarnation is up and either committing progress or
	// idle with nothing pending.
	Healthy Health = iota
	// Degraded: a restart is in flight — the watchdog fired or a start
	// failed — but the evidence still points at the component itself.
	Degraded
	// Partitioned: consecutive rebuilds changed nothing; fresh
	// incarnations wedge exactly like their predecessors, which points at
	// the link rather than the station.
	Partitioned
	// Down: the circuit breaker is open; the supervisor has given up
	// restarting until the cooldown elapses.
	Down
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Partitioned:
		return "partitioned"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Health(%d)", int32(h))
	}
}

// Transition is one health-state change.
type Transition struct {
	From, To Health
	// Cause is a short human-readable reason ("watchdog: no progress",
	// "breaker open", "progress", ...).
	Cause string
	At    time.Time
}

// Config parameterizes a Supervisor over incarnations of type S.
type Config[S any] struct {
	// Start builds a fresh incarnation. Required.
	Start func() (S, error)
	// Stop tears one down; it must release every resource Start acquired
	// and may block until the incarnation's goroutines exit. Required.
	Stop func(S)
	// Pending reports whether the component has outstanding work. The
	// watchdog only fires while Pending is true: an idle endpoint is
	// healthy, not wedged. Nil means never pending (watchdog disabled).
	Pending func() bool

	// Window is the no-progress interval after which a pending
	// incarnation is declared wedged (default 2s).
	Window time.Duration
	// Interval is the watchdog poll period (default Window/8, clamped to
	// [1ms, 250ms]).
	Interval time.Duration

	// BackoffBase and BackoffMax bound the jittered exponential delay
	// between consecutive rebuilds (defaults 50ms and 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// BreakerThreshold is how many fruitless restarts (failed starts or
	// watchdog teardowns without intervening progress) inside
	// BreakerWindow open the breaker (default 5; negative disables).
	BreakerThreshold int
	// BreakerWindow is the rolling window failures are counted in
	// (default 30s).
	BreakerWindow time.Duration
	// BreakerCooldown is how long an open breaker blocks restarts before
	// letting a half-open probe through (default 10s).
	BreakerCooldown time.Duration

	// PartitionAfter is how many consecutive fruitless restarts move the
	// health from Degraded to Partitioned (default 2).
	PartitionAfter int

	// Seed fixes the backoff jitter for reproducible tests (0 draws from
	// Clock.Seed; the resolved value is readable via Seed()).
	Seed int64
	// Wheel paces the watchdog poll, the backoff sleeps and the breaker
	// cooldown (default: a wheel for Clock — engine.DefaultWheel() when
	// Clock is nil too). Sharing the process-wide wheel keeps supervisors
	// off runtime timers, like every other retry in the runtime.
	Wheel *engine.Wheel
	// Clock stamps progress, transitions and breaker windows (default:
	// the Wheel's clock, i.e. the wall clock unless one was injected).
	Clock clock.Clock
	// Metrics receives the session.* family; nil uses metrics.Default().
	Metrics *metrics.Registry
	// OnTransition, when non-nil, observes every health change. It is
	// called from the supervisor's goroutine: keep it fast.
	OnTransition func(Transition)
}

func (c Config[S]) withDefaults() Config[S] {
	if c.Window <= 0 {
		c.Window = 2 * time.Second
	}
	if c.Interval <= 0 {
		c.Interval = c.Window / 8
		if c.Interval > 250*time.Millisecond {
			c.Interval = 250 * time.Millisecond
		}
	}
	if c.Interval < time.Millisecond {
		c.Interval = time.Millisecond
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = 5 * time.Second
		if c.BackoffMax < c.BackoffBase {
			c.BackoffMax = c.BackoffBase
		}
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 30 * time.Second
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.PartitionAfter <= 0 {
		c.PartitionAfter = 2
	}
	if c.Wheel == nil {
		if c.Clock != nil {
			c.Wheel = engine.NewWheelOn(c.Clock, 0, 0)
		} else {
			c.Wheel = engine.DefaultWheel()
		}
	}
	if c.Clock == nil {
		c.Clock = c.Wheel.Clock()
	}
	return c
}

// Stats are the supervisor's own lifetime counters (the registry carries
// the same numbers under session.*, but a registry may be shared between
// supervisors; these are this supervisor's alone).
type Stats struct {
	Restarts      int64 // incarnations built after the first
	StartFailures int64 // Start calls that returned an error
	Wedges        int64 // watchdog firings
	BreakerOpens  int64 // closed/half-open -> open transitions
	BreakerProbes int64 // half-open probe incarnations admitted
	BreakerCloses int64 // probe successes closing the breaker
	Transitions   int64 // health transitions
}

// Supervisor keeps one incarnation of a component alive; see the package
// comment. Create with New, then Run; always Close.
type Supervisor[S any] struct {
	cfg Config[S]
	m   supMetrics
	bo  backoff
	br  breaker

	mu     sync.Mutex
	cur    S
	has    bool
	gen    uint64
	readyc chan struct{}
	health Health

	progress     atomic.Int64 // commits observed (Progress calls)
	lastProgress atomic.Int64 // unix nanos of the last commit or refresh

	st struct {
		restarts, startFailures, wedges         atomic.Int64
		breakerOpens, breakerProbes, breakerClo atomic.Int64
		transitions                             atomic.Int64
	}

	seed int64 // resolved backoff-jitter seed

	started   bool
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	// sleep's reusable wheel timer and its wake signal. Owned by the run
	// goroutine; the buffered channel absorbs a firing no one awaits.
	wake  chan struct{}
	timer *engine.Timer
}

// New builds a supervisor. It does not start anything: call Run once the
// callbacks' dependencies are wired up.
func New[S any](cfg Config[S]) (*Supervisor[S], error) {
	if cfg.Start == nil || cfg.Stop == nil {
		return nil, fmt.Errorf("supervise: Start and Stop are required")
	}
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = cfg.Clock.Seed()
	}
	s := &Supervisor[S]{
		cfg:  cfg,
		seed: seed,
		m:    newSupMetrics(cfg.Metrics),
		bo:   backoff{base: cfg.BackoffBase, max: cfg.BackoffMax, rng: rand.New(rand.NewSource(seed))},
		br: breaker{
			threshold: cfg.BreakerThreshold,
			window:    cfg.BreakerWindow,
			cooldown:  cfg.BreakerCooldown,
		},
		stop: make(chan struct{}),
		done: make(chan struct{}),
		wake: make(chan struct{}, 1),
	}
	s.m.health.Set(float64(Healthy))
	s.markProgress()
	return s, nil
}

// Run starts the supervision loop. Call exactly once.
func (s *Supervisor[S]) Run() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("supervise: Run called twice")
	}
	s.started = true
	s.mu.Unlock()
	go s.run()
}

// Progress records one committed unit of work (an OK, a delivery); it
// feeds the watchdog and is safe to call from any goroutine, including
// station taps holding station locks.
func (s *Supervisor[S]) Progress() {
	s.progress.Add(1)
	s.markProgress()
}

func (s *Supervisor[S]) markProgress() {
	s.lastProgress.Store(s.cfg.Clock.Now().UnixNano())
}

// Seed returns the resolved backoff-jitter seed — the configured one, or
// the clock-drawn default — so a default-seeded run can still record a
// replayable seed in its repro output.
func (s *Supervisor[S]) Seed() int64 { return s.seed }

// Current blocks until a live incarnation exists and returns it with its
// generation number. It fails with ctx's error when ctx ends and with
// ErrStopped when the supervisor is closed. The caller may race a
// teardown: always treat the incarnation's "closed" errors as "get the
// next incarnation and retry".
func (s *Supervisor[S]) Current(ctx interface {
	Done() <-chan struct{}
	Err() error
}) (S, uint64, error) {
	var zero S
	for {
		s.mu.Lock()
		if s.has {
			st, gen := s.cur, s.gen
			s.mu.Unlock()
			return st, gen, nil
		}
		if s.readyc == nil {
			s.readyc = make(chan struct{})
		}
		c := s.readyc
		s.mu.Unlock()
		select {
		case <-c:
		case <-ctx.Done():
			return zero, 0, ctx.Err()
		case <-s.stop:
			return zero, 0, ErrStopped
		}
	}
}

// Peek returns the live incarnation without blocking.
func (s *Supervisor[S]) Peek() (S, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur, s.has
}

// Generation returns how many incarnations have been built so far.
func (s *Supervisor[S]) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Health returns the current health state.
func (s *Supervisor[S]) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health
}

// Stats returns this supervisor's lifetime counters.
func (s *Supervisor[S]) Stats() Stats {
	return Stats{
		Restarts:      s.st.restarts.Load(),
		StartFailures: s.st.startFailures.Load(),
		Wedges:        s.st.wedges.Load(),
		BreakerOpens:  s.st.breakerOpens.Load(),
		BreakerProbes: s.st.breakerProbes.Load(),
		BreakerCloses: s.st.breakerClo.Load(),
		Transitions:   s.st.transitions.Load(),
	}
}

// Close stops the loop, tears down the live incarnation and waits for the
// supervisor goroutine.
func (s *Supervisor[S]) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.mu.Lock()
		started := s.started
		s.mu.Unlock()
		if started {
			<-s.done
		} else {
			close(s.done)
		}
	})
	return nil
}

// transition moves the health machine, updating metrics and notifying the
// observer. Called only from the supervisor goroutine.
func (s *Supervisor[S]) transition(to Health, cause string) {
	s.mu.Lock()
	from := s.health
	if from == to {
		s.mu.Unlock()
		return
	}
	s.health = to
	s.mu.Unlock()

	s.m.health.Set(float64(to))
	s.m.transitions.Inc()
	s.st.transitions.Add(1)
	if s.cfg.OnTransition != nil {
		s.cfg.OnTransition(Transition{From: from, To: to, Cause: cause, At: s.cfg.Clock.Now()})
	}
}

// install publishes a freshly started incarnation.
func (s *Supervisor[S]) install(st S) {
	s.mu.Lock()
	s.cur, s.has = st, true
	s.gen++
	first := s.gen == 1
	if s.readyc != nil {
		close(s.readyc)
		s.readyc = nil
	}
	s.mu.Unlock()
	if !first {
		s.m.restarts.Inc()
		s.st.restarts.Add(1)
	}
}

// uninstall withdraws the incarnation before tearing it down, so no new
// Current caller can pick up a dying station.
func (s *Supervisor[S]) uninstall() {
	var zero S
	s.mu.Lock()
	s.cur, s.has = zero, false
	s.mu.Unlock()
}

// sleep waits d on the shared wheel, returning false if the supervisor
// is closed meanwhile. Only the run goroutine calls it, so the one
// reusable timer and wake channel need no locking; a sleep abandoned via
// s.stop may leave a stale firing behind, which the pre-arm drain (and
// the channel's buffer) absorbs.
func (s *Supervisor[S]) sleep(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-s.stop:
			return false
		default:
			return true
		}
	}
	select {
	case <-s.wake:
	default:
	}
	if s.timer == nil {
		s.timer = s.cfg.Wheel.AfterFunc(d, func() {
			select {
			case s.wake <- struct{}{}:
			default:
			}
		})
	} else {
		s.timer.Reset(d)
	}
	select {
	case <-s.wake:
		return true
	case <-s.stop:
		return false
	}
}

// recordFailure accounts one fruitless restart (failed start or watchdog
// teardown) against the breaker and the health machine.
func (s *Supervisor[S]) recordFailure(consecutive int, cause string) {
	if s.br.failure(s.cfg.Clock.Now()) {
		s.m.breakerOpens.Inc()
		s.st.breakerOpens.Add(1)
		s.transition(Down, "breaker open: "+cause)
		return
	}
	if consecutive >= s.cfg.PartitionAfter {
		s.transition(Partitioned, cause)
	} else {
		s.transition(Degraded, cause)
	}
}

// run is the supervision loop: gate on the breaker, start an incarnation,
// watch it, tear it down when wedged, back off, repeat.
func (s *Supervisor[S]) run() {
	defer close(s.done)
	defer func() {
		if s.timer != nil {
			s.timer.Stop()
		}
	}()
	consecutive := 0 // fruitless restarts in a row (backoff exponent)
	for {
		// Breaker gate: while open, sleep out the cooldown in slices so
		// Close stays responsive; a half-open state admits one probe.
		for {
			select {
			case <-s.stop:
				return
			default:
			}
			verdict, wait := s.br.allow(s.cfg.Clock.Now())
			if verdict == admitProbe {
				s.m.breakerProbes.Inc()
				s.st.breakerProbes.Add(1)
				s.transition(Degraded, "breaker probe")
			}
			if verdict != admitNone {
				break
			}
			if !s.sleep(wait) {
				return
			}
		}

		st, err := s.cfg.Start()
		if err != nil {
			s.m.startFailures.Inc()
			s.st.startFailures.Add(1)
			consecutive++
			s.recordFailure(consecutive, "start failed: "+err.Error())
			if !s.sleep(s.bo.next(consecutive)) {
				return
			}
			continue
		}
		s.install(st)
		s.markProgress() // grace: the window counts from the incarnation's birth
		born := s.cfg.Clock.Now()
		genProgress := s.progress.Load()
		rewarded := false // breaker success granted for this incarnation

		wedged := false
		for !wedged {
			if !s.sleep(s.cfg.Interval) {
				s.uninstall()
				s.cfg.Stop(st)
				return
			}
			now := s.cfg.Clock.Now()
			if p := s.progress.Load(); p != genProgress {
				// Work is committing: the incarnation earned its keep.
				genProgress = p
				consecutive = 0
				if !rewarded {
					rewarded = true
					if s.br.success() {
						s.m.breakerCloses.Inc()
						s.st.breakerClo.Add(1)
					}
				}
				s.transition(Healthy, "progress")
				continue
			}
			if s.cfg.Pending == nil || !s.cfg.Pending() {
				// Idle is not wedged; keep the window from firing the
				// instant pending work appears after a quiet stretch.
				s.markProgress()
				if now.Sub(born) >= s.cfg.Window {
					consecutive = 0
					// An idle probe earns its keep exactly like a
					// progressing one: surviving a full window with nothing
					// pending is the absence of the fault the breaker
					// opened on. Without this the breaker would stay
					// half-open with the probe ticket out forever, and a
					// much later unrelated wedge would re-open it instantly
					// instead of counting toward the threshold.
					if !rewarded {
						rewarded = true
						if s.br.success() {
							s.m.breakerCloses.Inc()
							s.st.breakerClo.Add(1)
						}
					}
					s.transition(Healthy, "idle")
				}
				continue
			}
			if now.Sub(time.Unix(0, s.lastProgress.Load())) >= s.cfg.Window {
				wedged = true
			}
		}

		s.m.wedges.Inc()
		s.st.wedges.Add(1)
		s.uninstall()
		s.cfg.Stop(st)
		consecutive++
		s.recordFailure(consecutive, "watchdog: no progress")
		if !s.sleep(s.bo.next(consecutive)) {
			return
		}
	}
}

// The supervisor's session.* metric names, as declared constants: the
// registry creates metrics on first use, so a typo'd literal would
// silently fork a counter (enforced by the metricname analyzer).
const (
	mSessionRestarts      = "session.restarts"
	mSessionStartFailures = "session.start_failures"
	mSessionWedges        = "session.wedges"
	mSessionBreakerOpens  = "session.breaker_opens"
	mSessionBreakerProbes = "session.breaker_probes"
	mSessionBreakerCloses = "session.breaker_closes"
	mSessionTransitions   = "session.health_transitions"
	mSessionHealth        = "session.health"
)

// supMetrics are the supervisor's registry hooks (the session.* family).
type supMetrics struct {
	restarts      *metrics.Counter // incarnations rebuilt after the first
	startFailures *metrics.Counter // Start errors
	wedges        *metrics.Counter // watchdog firings
	breakerOpens  *metrics.Counter // breaker open transitions
	breakerProbes *metrics.Counter // half-open probes admitted
	breakerCloses *metrics.Counter // probes that closed the breaker
	transitions   *metrics.Counter // health transitions
	health        *metrics.Gauge   // current health (0..3)
}

func newSupMetrics(r *metrics.Registry) supMetrics {
	if r == nil {
		r = metrics.Default()
	}
	return supMetrics{
		restarts:      r.Counter(mSessionRestarts),
		startFailures: r.Counter(mSessionStartFailures),
		wedges:        r.Counter(mSessionWedges),
		breakerOpens:  r.Counter(mSessionBreakerOpens),
		breakerProbes: r.Counter(mSessionBreakerProbes),
		breakerCloses: r.Counter(mSessionBreakerCloses),
		transitions:   r.Counter(mSessionTransitions),
		health:        r.Gauge(mSessionHealth),
	}
}
