package supervise

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ghm/internal/metrics"
)

func TestBackoffGrowthAndJitter(t *testing.T) {
	b := backoff{base: 10 * time.Millisecond, max: 400 * time.Millisecond,
		rng: rand.New(rand.NewSource(1))}
	prevCeil := time.Duration(0)
	for attempt := 1; attempt <= 12; attempt++ {
		ceil := b.base << (attempt - 1)
		if ceil > b.max || ceil <= 0 {
			ceil = b.max
		}
		for i := 0; i < 50; i++ {
			d := b.next(attempt)
			if d < ceil/2 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, ceil/2, ceil)
			}
		}
		if ceil < prevCeil {
			t.Fatalf("attempt %d: ceiling shrank %v -> %v", attempt, prevCeil, ceil)
		}
		prevCeil = ceil
	}
	// Way past the cap the shift must not overflow.
	if d := b.next(1000); d < b.max/2 || d > b.max {
		t.Fatalf("capped delay %v outside [%v, %v]", d, b.max/2, b.max)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := breaker{threshold: 3, window: time.Minute, cooldown: 10 * time.Second}

	for i := 0; i < 2; i++ {
		if v, _ := b.allow(now); v != admitNormal {
			t.Fatalf("closed breaker refused restart %d", i)
		}
		if b.failure(now) {
			t.Fatalf("failure %d opened breaker before threshold", i)
		}
		now = now.Add(time.Second)
	}
	if !b.failure(now) {
		t.Fatal("threshold failure did not open breaker")
	}
	if v, wait := b.allow(now); v != admitNone || wait <= 0 {
		t.Fatalf("open breaker admitted restart: v=%v wait=%v", v, wait)
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(11 * time.Second)
	if v, _ := b.allow(now); v != admitProbe {
		t.Fatal("half-open breaker did not admit a probe")
	}
	if v, _ := b.allow(now); v != admitNone {
		t.Fatal("half-open breaker admitted a second probe")
	}

	// Probe failure re-opens immediately.
	if !b.failure(now) {
		t.Fatal("probe failure did not re-open breaker")
	}
	now = now.Add(11 * time.Second)
	if v, _ := b.allow(now); v != admitProbe {
		t.Fatal("second cooldown did not admit a probe")
	}
	// Probe success closes.
	if !b.success() {
		t.Fatal("probe success did not report closing")
	}
	if v, _ := b.allow(now); v != admitNormal {
		t.Fatal("closed breaker refused restart after probe success")
	}
	// Success from closed is not a "close" event.
	if b.success() {
		t.Fatal("success while closed reported a breaker close")
	}
}

func TestBreakerWindowPrunesOldFailures(t *testing.T) {
	b := breaker{threshold: 3, window: time.Second, cooldown: time.Second}
	now := time.Unix(0, 0)
	b.failure(now)
	b.failure(now.Add(100 * time.Millisecond))
	// The first two fall out of the window before the next failures.
	now = now.Add(2 * time.Second)
	if b.failure(now) {
		t.Fatal("stale failures counted toward threshold")
	}
	if b.failure(now.Add(10 * time.Millisecond)) {
		t.Fatal("opened with only two in-window failures")
	}
	if !b.failure(now.Add(20 * time.Millisecond)) {
		t.Fatal("three in-window failures did not open")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := breaker{threshold: -1}
	now := time.Now()
	for i := 0; i < 100; i++ {
		if b.failure(now) {
			t.Fatal("disabled breaker opened")
		}
	}
	if v, _ := b.allow(now); v != admitNormal {
		t.Fatal("disabled breaker blocked a restart")
	}
}

// fakeStation is a controllable incarnation: progress is committed by the
// test calling sup.Progress, and the station records its own teardown.
type fakeStation struct {
	id      int
	stopped atomic.Bool
}

type fakeFactory struct {
	mu       sync.Mutex
	built    []*fakeStation
	failNext atomic.Int64 // number of upcoming Start calls to fail
}

func (f *fakeFactory) start() (*fakeStation, error) {
	if f.failNext.Load() > 0 {
		f.failNext.Add(-1)
		return nil, errors.New("boom")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	st := &fakeStation{id: len(f.built) + 1}
	f.built = append(f.built, st)
	return st, nil
}

func (f *fakeFactory) stop(st *fakeStation) { st.stopped.Store(true) }

func (f *fakeFactory) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.built)
}

// transitionLog collects health transitions thread-safely.
type transitionLog struct {
	mu sync.Mutex
	ts []Transition
}

func (l *transitionLog) add(tr Transition) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ts = append(l.ts, tr)
}

func (l *transitionLog) snapshot() []Transition {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Transition(nil), l.ts...)
}

func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestWatchdogRestartsWedgedStation(t *testing.T) {
	f := &fakeFactory{}
	pending := atomic.Bool{}
	pending.Store(true)
	tl := &transitionLog{}
	sup, err := New(Config[*fakeStation]{
		Start:            f.start,
		Stop:             f.stop,
		Pending:          pending.Load,
		Window:           40 * time.Millisecond,
		Interval:         5 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       4 * time.Millisecond,
		BreakerThreshold: 100, // keep the breaker out of this test
		Seed:             7,
		Metrics:          metrics.New(),
		OnTransition:     tl.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Run()
	defer sup.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st1, gen1, err := sup.Current(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gen1 != 1 || st1.id != 1 {
		t.Fatalf("first incarnation: gen=%d id=%d", gen1, st1.id)
	}

	// No progress while pending: the watchdog must tear it down and build
	// a successor.
	waitFor(t, "restart", func() bool { return sup.Stats().Restarts >= 1 })
	if !st1.stopped.Load() {
		t.Error("wedged incarnation was not stopped")
	}
	st2, gen2, err := sup.Current(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gen2 < 2 || st2.id == st1.id {
		t.Fatalf("successor not fresh: gen=%d id=%d", gen2, st2.id)
	}
	if sup.Stats().Wedges < 1 {
		t.Errorf("wedges not counted: %+v", sup.Stats())
	}

	// Commit progress: health returns to Healthy and restarts stop.
	sup.Progress()
	waitFor(t, "healthy", func() bool { return sup.Health() == Healthy })
	seen := tl.snapshot()
	var sawDegraded bool
	for _, tr := range seen {
		if tr.To == Degraded || tr.To == Partitioned {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Errorf("no degraded transition recorded: %+v", seen)
	}
}

func TestIdleStationStaysHealthy(t *testing.T) {
	f := &fakeFactory{}
	sup, err := New(Config[*fakeStation]{
		Start:    f.start,
		Stop:     f.stop,
		Pending:  func() bool { return false },
		Window:   30 * time.Millisecond,
		Interval: 5 * time.Millisecond,
		Seed:     7,
		Metrics:  metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Run()
	defer sup.Close()

	time.Sleep(150 * time.Millisecond) // several windows of idleness
	if got := sup.Stats(); got.Wedges != 0 || got.Restarts != 0 {
		t.Fatalf("idle station was restarted: %+v", got)
	}
	if h := sup.Health(); h != Healthy {
		t.Fatalf("idle health = %v", h)
	}
	if f.count() != 1 {
		t.Fatalf("built %d incarnations for an idle endpoint", f.count())
	}
}

func TestBreakerOpensOnPersistentStartFailure(t *testing.T) {
	f := &fakeFactory{}
	f.failNext.Store(1 << 30) // fail every Start until told otherwise
	tl := &transitionLog{}
	reg := metrics.New()
	sup, err := New(Config[*fakeStation]{
		Start:            f.start,
		Stop:             f.stop,
		Pending:          func() bool { return true },
		Window:           20 * time.Millisecond,
		Interval:         2 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerWindow:    10 * time.Second,
		BreakerCooldown:  50 * time.Millisecond,
		Seed:             11,
		Metrics:          reg,
		OnTransition:     tl.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Run()
	defer sup.Close()

	waitFor(t, "breaker open", func() bool { return sup.Stats().BreakerOpens >= 1 })
	waitFor(t, "down health", func() bool { return sup.Health() == Down })
	if sup.Stats().StartFailures < 3 {
		t.Errorf("start failures not counted: %+v", sup.Stats())
	}

	// Let the cooldown elapse and the probe succeed: the incarnation
	// builds, progress closes the breaker, health returns to Healthy.
	f.failNext.Store(0)
	waitFor(t, "probe", func() bool { return sup.Stats().BreakerProbes >= 1 })
	waitFor(t, "incarnation", func() bool { _, ok := sup.Peek(); return ok })
	sup.Progress()
	waitFor(t, "breaker close", func() bool { return sup.Stats().BreakerCloses >= 1 })
	waitFor(t, "healthy", func() bool { return sup.Health() == Healthy })

	var sawDown bool
	for _, tr := range tl.snapshot() {
		if tr.To == Down {
			sawDown = true
		}
	}
	if !sawDown {
		t.Error("no Down transition recorded")
	}
}

func TestPartitionedAfterConsecutiveWedges(t *testing.T) {
	f := &fakeFactory{}
	tl := &transitionLog{}
	sup, err := New(Config[*fakeStation]{
		Start:            f.start,
		Stop:             f.stop,
		Pending:          func() bool { return true },
		Window:           15 * time.Millisecond,
		Interval:         2 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: 100,
		PartitionAfter:   2,
		Seed:             13,
		Metrics:          metrics.New(),
		OnTransition:     tl.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Run()
	defer sup.Close()

	waitFor(t, "two wedges", func() bool { return sup.Stats().Wedges >= 2 })
	waitFor(t, "partitioned", func() bool {
		for _, tr := range tl.snapshot() {
			if tr.To == Partitioned {
				return true
			}
		}
		return false
	})
}

func TestCurrentUnblocksOnClose(t *testing.T) {
	f := &fakeFactory{}
	f.failNext.Store(1 << 30)
	sup, err := New(Config[*fakeStation]{
		Start:       f.start,
		Stop:        f.stop,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        3,
		Metrics:     metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Run()

	errc := make(chan error, 1)
	go func() {
		_, _, err := sup.Current(context.Background())
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	sup.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("Current after Close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Current did not unblock on Close")
	}
}

func TestCurrentHonorsContext(t *testing.T) {
	f := &fakeFactory{}
	f.failNext.Store(1 << 30)
	sup, err := New(Config[*fakeStation]{
		Start:       f.start,
		Stop:        f.stop,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        3,
		Metrics:     metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Run()
	defer sup.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := sup.Current(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Current with expired ctx: %v", err)
	}
}

func TestCloseBeforeRun(t *testing.T) {
	f := &fakeFactory{}
	sup, err := New(Config[*fakeStation]{Start: f.start, Stop: f.stop, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Close(); err != nil {
		t.Fatal(err)
	}
	if f.count() != 0 {
		t.Fatal("unrun supervisor built an incarnation")
	}
}

func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{
		Healthy: "healthy", Degraded: "degraded",
		Partitioned: "partitioned", Down: "down", Health(9): "Health(9)",
	} {
		if got := h.String(); got != want {
			t.Errorf("Health(%d).String() = %q, want %q", h, got, want)
		}
	}
}

// TestIdleProbeClosesBreaker is the probe-accounting regression: a
// half-open probe incarnation that comes up with nothing pending must
// still close the breaker after surviving a full idle window. Before the
// fix the breaker stayed half-open with the probe ticket out forever,
// and one later unrelated wedge re-opened it instantly instead of
// counting toward the threshold.
func TestIdleProbeClosesBreaker(t *testing.T) {
	f := &fakeFactory{}
	f.failNext.Store(1 << 30) // fail every Start until told otherwise
	pending := atomic.Bool{}
	sup, err := New(Config[*fakeStation]{
		Start:            f.start,
		Stop:             f.stop,
		Pending:          pending.Load,
		Window:           30 * time.Millisecond,
		Interval:         3 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerWindow:    10 * time.Second,
		BreakerCooldown:  40 * time.Millisecond,
		Seed:             13,
		Metrics:          metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Run()
	defer sup.Close()

	waitFor(t, "breaker open", func() bool { return sup.Stats().BreakerOpens >= 1 })

	// Heal the fault. The probe incarnation builds, finds nothing
	// pending, and must close the breaker by sitting idle a full window —
	// no progress commit ever happens.
	f.failNext.Store(0)
	waitFor(t, "probe", func() bool { return sup.Stats().BreakerProbes >= 1 })
	waitFor(t, "breaker close", func() bool { return sup.Stats().BreakerCloses >= 1 })
	waitFor(t, "healthy", func() bool { return sup.Health() == Healthy })

	// The breaker must be genuinely closed: a single later wedge counts
	// toward the threshold instead of re-opening as a failed probe.
	pending.Store(true)
	waitFor(t, "wedge", func() bool { return sup.Stats().Wedges >= 1 })
	pending.Store(false)
	time.Sleep(60 * time.Millisecond)
	if n := sup.Stats().BreakerOpens; n != 1 {
		t.Fatalf("one wedge after a successful idle probe re-opened the breaker: opens=%d", n)
	}
}
