// Package swarm boots very large populations of protocol station pairs
// — tens of thousands to hundreds of thousands — on an in-memory fabric
// under a virtual clock, and soaks them through a seeded fault schedule
// entirely in virtual time.
//
// The harness is single-threaded: every station is a pure state machine
// (ghm/internal/core) whose I/O runs inline in fabric delivery handlers
// and clock callbacks, so a 100k-station, 60-virtual-second soak is one
// goroutine walking one event heap. That shape is what makes two things
// possible at once: scale (no goroutine stacks, no channel buffers per
// station) and determinism (a fixed seed replays the identical event
// sequence, byte for byte).
//
// A sampled subset of pairs streams its higher-layer actions through
// ghm/internal/verify, checking the paper's Section 2.6 correctness
// conditions live under crashes, blackouts and loss pulses; every
// pair's actions additionally feed a running trace digest, so two runs
// can be compared for equality without retaining the trace.
package swarm

import (
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"strconv"
	"time"

	"ghm/internal/bitstr"
	"ghm/internal/clock"
	"ghm/internal/core"
	"ghm/internal/fabric"
	"ghm/internal/trace"
	"ghm/internal/verify"
)

// LinkProfile is the impairment model applied to every pair's link,
// in both directions (see fabric.LinkConfig for semantics).
type LinkProfile struct {
	Loss    float64       `json:"loss"`
	DupProb float64       `json:"dup_prob"`
	Latency time.Duration `json:"latency"`
	Jitter  time.Duration `json:"jitter"`
}

// FaultProfile shapes the virtual-time chaos schedule. Faults fire on a
// world-level timer; each firing picks one pair (alternating between
// the whole population and the verified sample, so the checkers always
// see crash traffic) and one fault: transmitter crash, receiver crash,
// link blackout, or a loss pulse.
type FaultProfile struct {
	// Every is the interval between fault injections; 0 picks a default
	// (25ms), negative disables faults entirely.
	Every time.Duration `json:"every"`
	// BlackoutMax bounds blackout and loss-pulse windows (default 250ms;
	// actual windows are drawn uniformly from [Every, BlackoutMax]).
	BlackoutMax time.Duration `json:"blackout_max"`
	// PulseLoss is the loss probability during a loss pulse (default 0.5).
	PulseLoss float64 `json:"pulse_loss"`
}

// Config parameterizes one swarm soak.
type Config struct {
	// Stations is the number of protocol stations to boot; they are
	// wired into Stations/2 transmitter–receiver pairs, one fabric link
	// each. Required.
	Stations int `json:"stations"`
	// Duration is the virtual length of the soak (default 60s).
	Duration time.Duration `json:"duration"`
	// Seed fixes the whole run: station randomness, link schedules,
	// fault schedule, submission phases (default 1).
	Seed int64 `json:"seed"`
	// Epsilon is the per-message error probability (default
	// core.DefaultEpsilon).
	Epsilon float64 `json:"epsilon,omitempty"`
	// MsgEvery paces each pair's higher layer: one message submission
	// attempt per interval (default 2s).
	MsgEvery time.Duration `json:"msg_every"`
	// RetryEvery paces each receiver's RETRY action (default 1s).
	RetryEvery time.Duration `json:"retry_every"`
	// Link is every pair's impairment model.
	Link LinkProfile `json:"link"`
	// Faults is the chaos schedule.
	Faults FaultProfile `json:"faults"`
	// Sample is how many pairs run under full Section 2.6 verification
	// (default 64, capped at the pair count). Sampling keeps checker
	// state off the fast path for the bulk of the population.
	Sample int `json:"sample"`
	// TraceWriter, when set, receives one line per higher-layer action
	// of every pair, in execution order — the run's full trace. Two runs
	// with the same Config produce identical streams.
	TraceWriter io.Writer `json:"-"`
}

func (cfg Config) withDefaults() (Config, error) {
	if cfg.Stations < 2 {
		return cfg, errors.New("swarm: need at least 2 stations")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 60 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MsgEvery <= 0 {
		cfg.MsgEvery = 2 * time.Second
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = time.Second
	}
	if cfg.Faults.Every == 0 {
		cfg.Faults.Every = 25 * time.Millisecond
	}
	if cfg.Faults.BlackoutMax <= 0 {
		cfg.Faults.BlackoutMax = 250 * time.Millisecond
	}
	if cfg.Faults.PulseLoss == 0 {
		cfg.Faults.PulseLoss = 0.5
	}
	if cfg.Sample == 0 {
		cfg.Sample = 64
	}
	if n := cfg.Stations / 2; cfg.Sample > n {
		cfg.Sample = n
	}
	return cfg, nil
}

// SampleReport is one verified pair's Section 2.6 outcome.
type SampleReport struct {
	Pair      int    `json:"pair"`
	Attempted int    `json:"attempted"`
	Completed int    `json:"completed"`
	Delivered int    `json:"delivered"`
	CrashT    int    `json:"crash_t"`
	CrashR    int    `json:"crash_r"`
	Clean     bool   `json:"clean"`
	Report    string `json:"report"`
}

// Result summarizes one swarm soak.
type Result struct {
	Stations       int     `json:"stations"`
	Pairs          int     `json:"pairs"`
	VirtualSeconds float64 `json:"virtual_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	// Rate is the harness capacity datapoint: station×virtual-seconds
	// simulated per wall-second.
	Rate float64 `json:"station_virtual_seconds_per_wall_second"`

	Attempted int64 `json:"attempted"`
	Completed int64 `json:"completed"`
	Delivered int64 `json:"delivered"`
	CrashT    int64 `json:"crash_t"`
	CrashR    int64 `json:"crash_r"`
	Blackouts int64 `json:"blackouts"`
	Pulses    int64 `json:"loss_pulses"`

	PacketsSent      int64 `json:"packets_sent"`
	PacketsDelivered int64 `json:"packets_delivered"`
	PacketsDropped   int64 `json:"packets_dropped"`
	Instants         int64 `json:"clock_instants"`

	// TraceHash digests every pair's higher-layer actions in execution
	// order (FNV-64a); equal hashes mean equal executions.
	TraceHash string `json:"trace_hash"`
	// Clean reports that every sampled pair verified clean.
	Clean   bool           `json:"clean"`
	Sampled []SampleReport `json:"sampled"`
}

// pair is one transmitter–receiver station pair and its link.
type pair struct {
	id int
	tx *core.Transmitter
	rx *core.Receiver
	pt *fabric.Port // transmitter's end of the link
	pr *fabric.Port // receiver's end

	seq       int // next message sequence number
	attempted int
	completed int
	delivered int
	crashT    int
	crashR    int

	step    int             // per-pair action counter (trace ordering)
	checker *verify.Checker // non-nil for sampled pairs
}

// world is the running soak.
type world struct {
	cfg   Config
	clk   *clock.Virtual
	fab   *fabric.Fabric
	pairs []*pair

	rng       prng // fault schedule + fault parameter draws
	faults    int  // fault firings so far (sample targeting alternation)
	blackouts int64
	pulses    int64

	hash   hash.Hash64
	wbuf   []byte
	writer io.Writer
}

// Run executes one swarm soak to completion and reports it.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	v := clock.NewVirtual(time.Time{}, cfg.Seed)
	fab := fabric.New(fabric.Config{Clock: v, Seed: mix(cfg.Seed, 0x5a)})
	w := &world{
		cfg:    cfg,
		clk:    v,
		fab:    fab,
		rng:    prng{s: uint64(mix(cfg.Seed, 0xfa))},
		hash:   fnv.New64a(),
		writer: cfg.TraceWriter,
	}

	nPairs := cfg.Stations / 2
	w.pairs = make([]*pair, nPairs)
	for i := 0; i < nPairs; i++ {
		p, err := w.newPair(i)
		if err != nil {
			return nil, err
		}
		w.pairs[i] = p
	}
	// Sampled pairs spread evenly across the population so faults and
	// phase offsets hit a representative slice.
	for s := 0; s < cfg.Sample; s++ {
		w.pairs[s*nPairs/cfg.Sample].checker = &verify.Checker{}
	}
	w.arm()

	start := v.Now()
	wallStart := time.Now()
	v.AdvanceUntil(start.Add(cfg.Duration))
	wall := time.Since(wallStart)

	return w.collect(wall), nil
}

func (w *world) newPair(i int) (*pair, error) {
	ptx := core.Params{
		Epsilon: w.cfg.Epsilon,
		Source:  bitstr.NewSeededSource(mix(w.cfg.Seed, int64(2*i+1))),
	}
	prx := core.Params{
		Epsilon: w.cfg.Epsilon,
		Source:  bitstr.NewSeededSource(mix(w.cfg.Seed, int64(2*i+2))),
	}
	tx, err := core.NewTransmitter(ptx)
	if err != nil {
		return nil, fmt.Errorf("swarm: pair %d: %w", i, err)
	}
	rx, err := core.NewReceiver(prx)
	if err != nil {
		return nil, fmt.Errorf("swarm: pair %d: %w", i, err)
	}
	pt, pr := w.fab.Link(fabric.LinkConfig{
		Loss:    w.cfg.Link.Loss,
		DupProb: w.cfg.Link.DupProb,
		Latency: w.cfg.Link.Latency,
		Jitter:  w.cfg.Link.Jitter,
	})
	p := &pair{id: i, tx: tx, rx: rx, pt: pt, pr: pr}
	// Inline ingress: a CTL packet arriving at the transmitter's port or
	// a DATA packet at the receiver's runs the station machine right at
	// its virtual delivery instant.
	pt.SetHandler(func(pkt []byte) {
		out := p.tx.ReceivePacket(pkt)
		if out.OK {
			p.completed++
			w.observe(p, trace.KindOK, "")
		}
		w.route(p.pt, out.Packets)
	})
	pr.SetHandler(func(pkt []byte) {
		out := p.rx.ReceivePacket(pkt)
		for _, m := range out.Delivered {
			p.delivered++
			w.observe(p, trace.KindReceiveMsg, string(m))
		}
		w.route(p.pr, out.Packets)
	})
	return p, nil
}

// arm schedules every pair's submission and retry pacing plus the fault
// driver. Phases are deterministic per pair and spread uniformly so the
// population does not fire in lockstep.
func (w *world) arm() {
	for _, p := range w.pairs {
		p := p
		msgPhase := time.Duration(uint64(mix(w.cfg.Seed, int64(3*p.id+1))) % uint64(w.cfg.MsgEvery))
		var mt clock.Timer
		mt = w.clk.AfterFunc(msgPhase, func() {
			w.submit(p)
			mt.Reset(w.cfg.MsgEvery)
		})
		retryPhase := time.Duration(uint64(mix(w.cfg.Seed, int64(3*p.id+2))) % uint64(w.cfg.RetryEvery))
		var rt clock.Timer
		rt = w.clk.AfterFunc(retryPhase, func() {
			w.route(p.pr, p.rx.Retry().Packets)
			rt.Reset(w.cfg.RetryEvery)
		})
	}
	if w.cfg.Faults.Every < 0 {
		return
	}
	var ft clock.Timer
	ft = w.clk.AfterFunc(w.cfg.Faults.Every, func() {
		w.injectFault()
		ft.Reset(w.cfg.Faults.Every)
	})
}

// submit pushes the pair's next unique message when its transmitter is
// free (Axiom 1: one in-flight message at a time).
func (w *world) submit(p *pair) {
	if p.tx.Busy() {
		return
	}
	m := "s" + strconv.Itoa(p.id) + "m" + strconv.Itoa(p.seq)
	p.seq++
	out, err := p.tx.SendMsg([]byte(m))
	if err != nil {
		return
	}
	p.attempted++
	w.observe(p, trace.KindSendMsg, m)
	w.route(p.pt, out.Packets)
}

// route places station output packets on the pair's link.
func (w *world) route(port *fabric.Port, pkts [][]byte) {
	for _, pkt := range pkts {
		// Fabric ports only fail when closed, and swarm links never
		// close mid-run.
		_ = port.Send(pkt)
	}
}

// injectFault fires one chaos action on one pair. Firings alternate
// between the full population and the verified sample, so conformance
// checking always sees crash and partition traffic.
func (w *world) injectFault() {
	w.faults++
	var p *pair
	if w.faults%2 == 0 && w.cfg.Sample > 0 {
		s := int(w.rng.next() % uint64(w.cfg.Sample))
		p = w.pairs[s*len(w.pairs)/w.cfg.Sample]
	} else {
		p = w.pairs[int(w.rng.next()%uint64(len(w.pairs)))]
	}
	span := w.cfg.Faults.BlackoutMax - w.cfg.Faults.Every
	window := w.cfg.Faults.Every
	if span > 0 {
		window += time.Duration(w.rng.next() % uint64(span))
	}
	switch w.rng.next() % 4 {
	case 0:
		p.tx.Crash()
		p.crashT++
		w.observe(p, trace.KindCrashT, "")
	case 1:
		p.rx.Crash()
		p.crashR++
		w.observe(p, trace.KindCrashR, "")
	case 2:
		w.blackouts++
		p.pt.SetBlackout(true)
		p.pr.SetBlackout(true)
		w.clk.AfterFunc(window, func() {
			p.pt.SetBlackout(false)
			p.pr.SetBlackout(false)
		})
	case 3:
		w.pulses++
		p.pt.SetLoss(w.cfg.Faults.PulseLoss)
		p.pr.SetLoss(w.cfg.Faults.PulseLoss)
		w.clk.AfterFunc(window, func() {
			p.pt.SetLoss(w.cfg.Link.Loss)
			p.pr.SetLoss(w.cfg.Link.Loss)
		})
	}
}

// observe records one higher-layer action: per-pair step ordering, the
// sampled checker, the world trace digest, and the optional trace
// stream. The digest covers every pair, so two runs are comparable in
// O(1) memory.
func (w *world) observe(p *pair, kind trace.Kind, msg string) {
	p.step++
	if p.checker != nil {
		p.checker.Observe(trace.Event{Step: p.step, Kind: kind, Msg: msg})
	}
	b := w.wbuf[:0]
	b = append(b, 's')
	b = strconv.AppendInt(b, int64(p.id), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, w.clk.Now().UnixNano(), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(kind), 10)
	b = append(b, ' ')
	b = append(b, msg...)
	b = append(b, '\n')
	w.wbuf = b
	w.hash.Write(b)
	if w.writer != nil {
		w.writer.Write(b)
	}
}

// collect aggregates the run.
func (w *world) collect(wall time.Duration) *Result {
	res := &Result{
		Stations:       len(w.pairs) * 2,
		Pairs:          len(w.pairs),
		VirtualSeconds: w.cfg.Duration.Seconds(),
		WallSeconds:    wall.Seconds(),
		Blackouts:      w.blackouts,
		Pulses:         w.pulses,
		Instants:       w.clk.Steps(),
		TraceHash:      fmt.Sprintf("%016x", w.hash.Sum64()),
		Clean:          true,
	}
	if res.WallSeconds > 0 {
		res.Rate = float64(res.Stations) * res.VirtualSeconds / res.WallSeconds
	}
	for _, p := range w.pairs {
		res.Attempted += int64(p.attempted)
		res.Completed += int64(p.completed)
		res.Delivered += int64(p.delivered)
		res.CrashT += int64(p.crashT)
		res.CrashR += int64(p.crashR)
		for _, st := range []*fabric.Port{p.pt, p.pr} {
			s := st.Stats()
			res.PacketsSent += s.Sent
			res.PacketsDelivered += s.Delivered
			res.PacketsDropped += s.DropIID + s.DropBurst + s.DropBlackout + s.DropQueue
		}
		if p.checker == nil {
			continue
		}
		rep := p.checker.Report()
		clean := rep.Clean()
		res.Clean = res.Clean && clean
		res.Sampled = append(res.Sampled, SampleReport{
			Pair:      p.id,
			Attempted: p.attempted,
			Completed: p.completed,
			Delivered: p.delivered,
			CrashT:    p.crashT,
			CrashR:    p.crashR,
			Clean:     clean,
			Report:    rep.String(),
		})
	}
	return res
}

// mix decorrelates derived seeds (SplitMix64 finalizer).
func mix(seed, n int64) int64 {
	z := uint64(seed) + uint64(n)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// prng is a SplitMix64 stream for the fault schedule.
type prng struct{ s uint64 }

func (r *prng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
