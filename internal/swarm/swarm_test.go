package swarm

import (
	"bytes"
	"testing"
	"time"
)

func testConfig(stations int, seed int64) Config {
	return Config{
		Stations:   stations,
		Duration:   10 * time.Second,
		Seed:       seed,
		MsgEvery:   time.Second,
		RetryEvery: 500 * time.Millisecond,
		Link: LinkProfile{
			Loss:    0.1,
			DupProb: 0.05,
			Latency: 5 * time.Millisecond,
			Jitter:  5 * time.Millisecond,
		},
		Faults: FaultProfile{Every: 20 * time.Millisecond},
		Sample: 16,
	}
}

func TestSwarmSoakConformance(t *testing.T) {
	res, err := Run(testConfig(200, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		for _, s := range res.Sampled {
			if !s.Clean {
				t.Errorf("pair %d: %s", s.Pair, s.Report)
			}
		}
		t.Fatalf("sampled stations violated Section 2.6 conditions")
	}
	if res.Completed == 0 {
		t.Fatalf("no message completed in a 10s soak: %+v", res)
	}
	if res.CrashT == 0 || res.CrashR == 0 || res.Blackouts == 0 {
		t.Fatalf("fault schedule did not exercise all fault kinds: crashT=%d crashR=%d blackouts=%d",
			res.CrashT, res.CrashR, res.Blackouts)
	}
	if res.PacketsDropped == 0 {
		t.Fatalf("impaired links dropped nothing: %+v", res)
	}
	if len(res.Sampled) != 16 {
		t.Fatalf("sampled %d pairs, want 16", len(res.Sampled))
	}
}

func TestSwarmDeterministic(t *testing.T) {
	run := func(seed int64) (*Result, []byte) {
		var buf bytes.Buffer
		cfg := testConfig(100, seed)
		cfg.TraceWriter = &buf
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	r1, t1 := run(42)
	r2, t2 := run(42)
	if r1.TraceHash != r2.TraceHash {
		t.Fatalf("same seed, different trace hashes: %s vs %s", r1.TraceHash, r2.TraceHash)
	}
	if !bytes.Equal(t1, t2) {
		t.Fatalf("same seed, different trace streams (%d vs %d bytes)", len(t1), len(t2))
	}
	if r1.Completed != r2.Completed || r1.PacketsSent != r2.PacketsSent || r1.Instants != r2.Instants {
		t.Fatalf("same seed, different counters:\n%+v\n%+v", r1, r2)
	}
	if len(t1) == 0 {
		t.Fatalf("empty trace stream")
	}
	r3, _ := run(43)
	if r3.TraceHash == r1.TraceHash {
		t.Fatalf("different seeds produced identical traces")
	}
}

func TestSwarmConfigValidation(t *testing.T) {
	if _, err := Run(Config{Stations: 1}); err == nil {
		t.Fatalf("Stations=1 accepted")
	}
}
