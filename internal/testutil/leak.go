// Package testutil holds shared test harness pieces; the headline one is
// the goroutine-leak guard. The runtime rewrite's core promise is a
// bounded goroutine budget — one pump per conn plus the process-wide
// wheel — and a leaked pump is precisely the bug the budget exists to
// prevent, so the engine, netlink and session suites fail when a test
// exits with goroutines it created still running.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakAllowlist matches goroutines that may legitimately outlive a test,
// by their creation site in the stack dump:
//
//   - the process-wide timer wheel (engine.DefaultWheel) is started once
//     and deliberately never stopped;
//   - the testing package's own machinery (tRunner waiters, parallel
//     test scaffolding);
//   - runtime helpers that surface in dumps on some platforms.
var leakAllowlist = []string{
	"created by ghm/internal/engine.NewWheel",
	"created by testing.",
	"created by runtime.",
	"created by os/signal.",
}

func allowed(block string) bool {
	for _, marker := range leakAllowlist {
		if strings.Contains(block, marker) {
			return true
		}
	}
	return false
}

// goroutines snapshots every live goroutine, keyed by id, with its full
// stack block as the value.
func goroutines() map[int]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := make(map[int]string)
	for _, block := range strings.Split(string(buf), "\n\n") {
		var id int
		if _, err := fmt.Sscanf(block, "goroutine %d ", &id); err == nil {
			out[id] = block
		}
	}
	return out
}

// leakedSince diffs the current goroutines against a baseline snapshot,
// retrying until the diff (minus the allowlist) drains or the deadline
// passes: goroutines unblocked by a Close need a few scheduler turns to
// actually exit, and a guard without a grace window would flake on
// exactly the teardowns it is meant to bless.
func leakedSince(base map[int]string, wait time.Duration) []string {
	deadline := time.Now().Add(wait)
	for {
		var leaked []string
		for id, block := range goroutines() {
			if _, ok := base[id]; ok {
				continue
			}
			if !allowed(block) {
				leaked = append(leaked, block)
			}
		}
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// VerifyNoLeaks arms the leak guard for one test: it snapshots the live
// goroutines now and, when the test ends, fails it if goroutines created
// since are still running (allowlist aside). Call it first thing in the
// test. A test that already failed is left alone — its teardown may
// legitimately have been cut short, and the first failure is the one
// worth reading.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	base := goroutines()
	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		if leaked := leakedSince(base, 2*time.Second); len(leaked) > 0 {
			t.Errorf("goroutine leak: %d goroutine(s) created by this test still running:\n\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
	})
}

// Main is a TestMain body that guards the whole package: every goroutine
// alive after m.Run that was not alive before it (allowlist aside) fails
// the suite. Use it where per-test guards would race parallel tests:
//
//	func TestMain(m *testing.M) { testutil.Main(m) }
func Main(m *testing.M) {
	base := goroutines()
	code := m.Run()
	if code == 0 {
		if leaked := leakedSince(base, 5*time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr,
				"testutil: goroutine leak: %d goroutine(s) still running after the suite:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}
