package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonEvent is the serialized form of an Event. Field names are stable:
// saved traces are an interchange format between runs and tools.
type jsonEvent struct {
	Step   int    `json:"step"`
	Kind   string `json:"kind"`
	Dir    string `json:"dir,omitempty"`
	PktID  int64  `json:"pktId,omitempty"`
	PktLen int    `json:"pktLen,omitempty"`
	Msg    string `json:"msg,omitempty"`
	Slot   int    `json:"slot,omitempty"`
}

var kindToJSON = map[Kind]string{
	KindSendMsg:    "send_msg",
	KindOK:         "ok",
	KindReceiveMsg: "receive_msg",
	KindCrashT:     "crash_t",
	KindCrashR:     "crash_r",
	KindSendPkt:    "send_pkt",
	KindDeliverPkt: "deliver_pkt",
	KindRetry:      "retry",
}

var jsonToKind = invert(kindToJSON)

var dirToJSON = map[Dir]string{
	DirTR: "tr",
	DirRT: "rt",
}

var jsonToDir = invert(dirToJSON)

func invert[K comparable, V comparable](m map[K]V) map[V]K {
	out := make(map[V]K, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// WriteJSONL writes one JSON object per line for each event.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range events {
		kind, ok := kindToJSON[e.Kind]
		if !ok {
			return fmt.Errorf("trace: event %d has unknown kind %d", i, e.Kind)
		}
		je := jsonEvent{Step: e.Step, Kind: kind, Msg: e.Msg, Slot: e.Slot}
		if e.Kind == KindSendPkt || e.Kind == KindDeliverPkt {
			je.Dir = dirToJSON[e.Dir]
			je.PktID = e.PktID
			je.PktLen = e.PktLen
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		kind, ok := jsonToKind[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, je.Kind)
		}
		e := Event{Step: je.Step, Kind: kind, Msg: je.Msg, PktID: je.PktID, PktLen: je.PktLen, Slot: je.Slot}
		if je.Dir != "" {
			d, ok := jsonToDir[je.Dir]
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown dir %q", line, je.Dir)
			}
			e.Dir = d
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return events, nil
}
