package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Step: 0, Kind: KindSendMsg, Msg: "m-0"},
		{Step: 1, Kind: KindRetry},
		{Step: 1, Kind: KindSendPkt, Dir: DirRT, PktID: 0, PktLen: 12},
		{Step: 2, Kind: KindDeliverPkt, Dir: DirRT, PktID: 0, PktLen: 12},
		{Step: 2, Kind: KindSendPkt, Dir: DirTR, PktID: 0, PktLen: 30},
		{Step: 3, Kind: KindDeliverPkt, Dir: DirTR, PktID: 0, PktLen: 30},
		{Step: 3, Kind: KindReceiveMsg, Msg: "m-0"},
		{Step: 4, Kind: KindOK},
		{Step: 5, Kind: KindCrashT},
		{Step: 6, Kind: KindCrashR},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	give := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, give); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(give) {
		t.Fatalf("round trip %d events, want %d", len(got), len(give))
	}
	for i := range give {
		if got[i] != give[i] {
			t.Errorf("event %d: got %+v want %+v", i, got[i], give[i])
		}
	}
}

func TestJSONLStableFieldNames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"kind":"send_msg"`, `"kind":"receive_msg"`, `"kind":"ok"`,
		`"kind":"crash_t"`, `"kind":"crash_r"`, `"dir":"tr"`, `"dir":"rt"`,
		`"msg":"m-0"`, `"pktLen":30`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("serialized trace missing %q:\n%s", want, out)
		}
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"step":1,"kind":"ok"}` + "\n\n" + `{"step":2,"kind":"retry"}` + "\n"
	got, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Kind != KindOK || got[1].Kind != KindRetry {
		t.Fatalf("got %+v", got)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "bad json", give: "{not json}"},
		{name: "unknown kind", give: `{"step":1,"kind":"warp"}`},
		{name: "unknown dir", give: `{"step":1,"kind":"send_pkt","dir":"up"}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSONL(strings.NewReader(tt.give)); err == nil {
				t.Errorf("ReadJSONL(%q) succeeded", tt.give)
			}
		})
	}
}

func TestWriteJSONLUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []Event{{Kind: Kind(99)}}); err == nil {
		t.Error("unknown kind serialized")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %d events", err, len(got))
	}
}
