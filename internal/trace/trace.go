// Package trace records executions of the composed system in the sense of
// the paper's I/O-automata model: the sequence of externally visible
// actions (send_msg, OK, receive_msg, crashes, packet sends and
// deliveries). The correctness conditions of Section 2.6 are defined over
// such executions; ghm/internal/verify checks them mechanically over a
// recorded Log.
package trace

import "fmt"

// Dir identifies one of the two unidirectional channels.
type Dir int

const (
	// DirTR is the transmitter -> receiver channel (C^{T->R}).
	DirTR Dir = iota + 1
	// DirRT is the receiver -> transmitter channel (C^{R->T}).
	DirRT
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	switch d {
	case DirTR:
		return "T->R"
	case DirRT:
		return "R->T"
	default:
		return fmt.Sprintf("Dir(%d)", int(d))
	}
}

// Kind enumerates the externally visible actions of the composed system.
type Kind int

const (
	// KindSendMsg is the higher layer handing a message to the transmitter.
	KindSendMsg Kind = iota + 1
	// KindOK is the transmitter's completion notification.
	KindOK
	// KindReceiveMsg is a delivery to the higher layer at the receiver.
	KindReceiveMsg
	// KindCrashT erases the transmitting station's memory.
	KindCrashT
	// KindCrashR erases the receiving station's memory.
	KindCrashR
	// KindSendPkt is a send_pkt action placing a packet on a channel.
	KindSendPkt
	// KindDeliverPkt is a deliver_pkt/receive_pkt pair: the adversary
	// releasing a (possibly duplicated) packet to its destination.
	KindDeliverPkt
	// KindRetry is the receiver's internal RETRY action.
	KindRetry
)

var kindNames = map[Kind]string{
	KindSendMsg:    "send_msg",
	KindOK:         "OK",
	KindReceiveMsg: "receive_msg",
	KindCrashT:     "crash^T",
	KindCrashR:     "crash^R",
	KindSendPkt:    "send_pkt",
	KindDeliverPkt: "deliver_pkt",
	KindRetry:      "retry",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one action of an execution.
type Event struct {
	Step   int    // logical time assigned by the scheduler
	Kind   Kind   //
	Dir    Dir    // set for packet events
	PktID  int64  // set for packet events: the channel-assigned identifier
	PktLen int    // set for packet events: length in bytes
	Msg    string // set for send_msg / receive_msg: the unique message id
	// Slot indexes windowed stations' actions: which of the k concurrent
	// exchanges a send_msg/OK/receive_msg belongs to. Single-slot stations
	// leave it 0, which is also windowed slot 0 — a window of depth 1
	// produces exactly a single-slot trace.
	Slot int
}

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e.Kind {
	case KindSendMsg, KindReceiveMsg:
		return fmt.Sprintf("%6d %s(%s)", e.Step, e.Kind, e.Msg)
	case KindSendPkt, KindDeliverPkt:
		return fmt.Sprintf("%6d %s %s id=%d len=%d", e.Step, e.Kind, e.Dir, e.PktID, e.PktLen)
	default:
		return fmt.Sprintf("%6d %s", e.Step, e.Kind)
	}
}

// Log accumulates the events of one execution. The zero value is an empty
// log ready to use.
type Log struct {
	events []Event
}

// Append records e.
func (l *Log) Append(e Event) { l.events = append(l.events, e) }

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Events returns a copy of the recorded execution.
func (l *Log) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Last returns the most recent event and whether the log is non-empty.
func (l *Log) Last() (Event, bool) {
	if len(l.events) == 0 {
		return Event{}, false
	}
	return l.events[len(l.events)-1], true
}
