package trace

import (
	"strings"
	"testing"
)

func TestEventString(t *testing.T) {
	tests := []struct {
		give Event
		want []string // substrings that must appear
	}{
		{give: Event{Step: 3, Kind: KindSendMsg, Msg: "m-1"}, want: []string{"send_msg", "m-1"}},
		{give: Event{Step: 4, Kind: KindReceiveMsg, Msg: "m-2"}, want: []string{"receive_msg", "m-2"}},
		{give: Event{Step: 5, Kind: KindOK}, want: []string{"OK"}},
		{give: Event{Step: 6, Kind: KindCrashT}, want: []string{"crash^T"}},
		{give: Event{Step: 7, Kind: KindCrashR}, want: []string{"crash^R"}},
		{give: Event{Step: 8, Kind: KindSendPkt, Dir: DirTR, PktID: 12, PktLen: 40},
			want: []string{"send_pkt", "T->R", "id=12", "len=40"}},
		{give: Event{Step: 9, Kind: KindDeliverPkt, Dir: DirRT, PktID: 7, PktLen: 9},
			want: []string{"deliver_pkt", "R->T", "id=7"}},
		{give: Event{Step: 10, Kind: KindRetry}, want: []string{"retry"}},
	}
	for _, tt := range tests {
		got := tt.give.String()
		for _, w := range tt.want {
			if !strings.Contains(got, w) {
				t.Errorf("Event %+v String() = %q, missing %q", tt.give, got, w)
			}
		}
	}
}

func TestUnknownKindDirStrings(t *testing.T) {
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("Kind(99).String() = %q", got)
	}
	if got := Dir(99).String(); !strings.Contains(got, "99") {
		t.Errorf("Dir(99).String() = %q", got)
	}
}

func TestLog(t *testing.T) {
	var l Log
	if l.Len() != 0 {
		t.Fatal("zero Log not empty")
	}
	if _, ok := l.Last(); ok {
		t.Fatal("Last on empty log reported ok")
	}
	l.Append(Event{Step: 1, Kind: KindSendMsg, Msg: "a"})
	l.Append(Event{Step: 2, Kind: KindOK})
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	last, ok := l.Last()
	if !ok || last.Kind != KindOK {
		t.Fatalf("Last = %+v, %v", last, ok)
	}

	// Events returns a copy: mutating it must not affect the log.
	ev := l.Events()
	ev[0].Msg = "tampered"
	if got := l.Events()[0].Msg; got != "a" {
		t.Errorf("log mutated through Events copy: %q", got)
	}
}
