// Package transport implements the semi-reliable lower layer the paper's
// introduction describes for the data transport layer: a network of relay
// nodes connected by unreliable, failing links, over which the two end
// stations run the GHM protocol end to end.
//
// Two relay strategies are provided, matching the paper's discussion:
//
//   - Flooding: every packet is forwarded to every neighbour (with
//     duplicate suppression). Trivially semi-reliable while the graph
//     stays connected, at a cost of O(|E|) link traversals per packet —
//     the paper's "trivial implementation".
//   - PathRouting: packets follow a shortest path computed over the links
//     currently up, and the path is recomputed when links fail — the
//     [HK89]-style "find a reliable path and replace it only when an error
//     is detected" scheme, with cost O(path length) per packet. Packets in
//     flight on a failing link are lost; the GHM layer above recovers
//     them.
//
// The network is a concurrent simulation: a single pump goroutine moves
// packets hop by hop on a fixed tick, toggling link state (failures and
// repairs) and applying per-link loss. Endpoints satisfy the same
// PacketConn contract as ghm/internal/netlink, so the GHM sessions run on
// top unchanged.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Mode selects the relay strategy for an endpoint's traffic.
type Mode int

const (
	// Flooding forwards every packet on every link.
	Flooding Mode = iota + 1
	// PathRouting forwards along a shortest currently-up path.
	PathRouting
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Flooding:
		return "flooding"
	case PathRouting:
		return "path-routing"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes the network.
type Config struct {
	// Nodes is the number of relay nodes, identified 0..Nodes-1.
	Nodes int
	// Edges are undirected links between node pairs.
	Edges [][2]int
	// Loss is the per-traversal packet loss probability on an up link.
	Loss float64
	// FailProb is the per-tick probability an up link fails.
	FailProb float64
	// RepairProb is the per-tick probability a down link recovers.
	RepairProb float64
	// TickEvery is the pump interval (default 100 microseconds).
	TickEvery time.Duration
	// Seed fixes the fault schedule (0 = from clock).
	Seed int64
}

// Stats counts network-wide activity.
type Stats struct {
	Injected   int // end-to-end packets handed to Send
	DeliveredE int // end-to-end packets that reached their destination
	Traversals int // individual link traversals attempted
	Lost       int // traversals dropped by loss or a down link
	NoRoute    int // path-mode injections dropped for lack of an up path
}

// Network is the relay network. Create with New, attach endpoints with
// Endpoint, and Close when done.
type Network struct {
	cfg Config

	mu       sync.Mutex
	adj      map[int][]int
	up       map[edge]bool
	nodeDown map[int]bool
	queues   map[edge][]*relayPkt
	inbox    map[int]chan []byte
	seen     map[int]*dedup
	rng      *rand.Rand
	nextID   uint64
	stats    Stats

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

type edge struct{ from, to int }

type relayPkt struct {
	id      uint64
	src     int
	dst     int
	mode    Mode
	path    []int // remaining hops for PathRouting
	payload []byte
}

// New validates cfg and starts the network pump.
func New(cfg Config) (*Network, error) {
	if cfg.Nodes < 2 {
		return nil, errors.New("transport: need at least 2 nodes")
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 100 * time.Microsecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	n := &Network{
		cfg:      cfg,
		adj:      make(map[int][]int),
		up:       make(map[edge]bool),
		nodeDown: make(map[int]bool),
		queues:   make(map[edge][]*relayPkt),
		inbox:    make(map[int]chan []byte),
		seen:     make(map[int]*dedup),
		rng:      rand.New(rand.NewSource(seed)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, e := range cfg.Edges {
		a, b := e[0], e[1]
		if a < 0 || b < 0 || a >= cfg.Nodes || b >= cfg.Nodes || a == b {
			return nil, fmt.Errorf("transport: invalid edge %v", e)
		}
		n.adj[a] = append(n.adj[a], b)
		n.adj[b] = append(n.adj[b], a)
		n.up[edge{a, b}] = true
		n.up[edge{b, a}] = true
	}
	go n.pump()
	return n, nil
}

// Endpoint returns a PacketConn at node addressed to peer. The returned
// endpoint satisfies ghm/internal/netlink.PacketConn (and the public
// ghm.PacketConn), so GHM sessions run over it directly.
func (n *Network) Endpoint(node, peer int, mode Mode) (*Endpoint, error) {
	if node < 0 || node >= n.cfg.Nodes || peer < 0 || peer >= n.cfg.Nodes {
		return nil, fmt.Errorf("transport: invalid endpoint %d->%d", node, peer)
	}
	if mode != Flooding && mode != PathRouting {
		return nil, fmt.Errorf("transport: invalid mode %v", mode)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.inbox[node]; !ok {
		// Buffered so the pump never blocks on a slow consumer; overflow
		// is dropped like any congested link.
		n.inbox[node] = make(chan []byte, 1024)
	}
	return &Endpoint{net: n, node: node, peer: peer, mode: mode, closed: make(chan struct{})}, nil
}

// Stats returns a snapshot of network counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// SetLink forces a link up or down (both directions), for failure-injection
// tests and demos.
func (n *Network) SetLink(a, b int, isUp bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.up[edge{a, b}] = isUp
	n.up[edge{b, a}] = isUp
}

// SetNode crashes or revives a relay node. A down node drops every packet
// addressed through it; a revived node comes back with its memory erased
// (its flooding dedup set is gone, exactly like a host crash in the
// paper's model), so it may briefly re-forward duplicates — which the
// layer above tolerates by design.
func (n *Network) SetNode(i int, isUp bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if isUp {
		if n.nodeDown[i] {
			delete(n.nodeDown, i)
			delete(n.seen, i) // memory erased across the crash
		}
		return
	}
	n.nodeDown[i] = true
}

// Close stops the pump and waits for it.
func (n *Network) Close() {
	n.closeOnce.Do(func() {
		close(n.stop)
		<-n.done
	})
}

// pump advances the network on a fixed tick.
func (n *Network) pump() {
	defer close(n.done)
	ticker := time.NewTicker(n.cfg.TickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			n.step()
		case <-n.stop:
			return
		}
	}
}

// step toggles link states and moves every queued packet one hop.
func (n *Network) step() {
	n.mu.Lock()
	defer n.mu.Unlock()

	if n.cfg.FailProb > 0 || n.cfg.RepairProb > 0 {
		for e, isUp := range n.up {
			if e.from > e.to {
				continue // toggle each undirected link once
			}
			switch {
			case isUp && n.rng.Float64() < n.cfg.FailProb:
				n.up[e] = false
				n.up[edge{e.to, e.from}] = false
			case !isUp && n.rng.Float64() < n.cfg.RepairProb:
				n.up[e] = true
				n.up[edge{e.to, e.from}] = true
			}
		}
	}

	// Drain a snapshot of the queues; forwarding enqueues for next tick.
	moving := make(map[edge][]*relayPkt, len(n.queues))
	for e, q := range n.queues {
		if len(q) > 0 {
			moving[e] = q
			n.queues[e] = nil
		}
	}
	for e, q := range moving {
		for _, p := range q {
			n.stats.Traversals++
			if !n.up[e] || n.nodeDown[e.to] || n.rng.Float64() < n.cfg.Loss {
				n.stats.Lost++
				continue
			}
			n.arrive(e.to, e.from, p)
		}
	}
}

// arrive handles packet p reaching node (from the given neighbour; -1 for
// local injection). Caller holds n.mu.
func (n *Network) arrive(node, from int, p *relayPkt) {
	if node == p.dst {
		if ch, ok := n.inbox[node]; ok {
			select {
			case ch <- p.payload:
				n.stats.DeliveredE++
			default:
				// Destination congested: the packet is lost, which the
				// layer above tolerates.
				n.stats.Lost++
			}
		}
		return
	}
	switch p.mode {
	case Flooding:
		d := n.seen[node]
		if d == nil {
			d = newDedup(8192)
			n.seen[node] = d
		}
		if d.contains(p.id) {
			return
		}
		d.add(p.id)
		for _, nb := range n.adj[node] {
			if nb == from {
				continue
			}
			n.queues[edge{node, nb}] = append(n.queues[edge{node, nb}], p)
		}
	case PathRouting:
		if len(p.path) == 0 {
			return
		}
		next := p.path[0]
		rest := p.path[1:]
		fwd := &relayPkt{id: p.id, src: p.src, dst: p.dst, mode: p.mode, path: rest, payload: p.payload}
		n.queues[edge{node, next}] = append(n.queues[edge{node, next}], fwd)
	}
}

// inject places a freshly sent packet into the network. For PathRouting
// the route is computed over currently-up links — recomputing per packet
// is the "replace the path when an error is detected" scheme taken to its
// simplest form (the route oracle stands in for [HK89]'s detection
// machinery; the cost profile is the same).
func (n *Network) inject(src, dst int, mode Mode, payload []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Injected++
	if n.nodeDown[src] {
		// A crashed host cannot place packets on the network.
		n.stats.Lost++
		return
	}
	n.nextID++
	p := &relayPkt{
		id:      n.nextID,
		src:     src,
		dst:     dst,
		mode:    mode,
		payload: append([]byte(nil), payload...),
	}
	if mode == PathRouting {
		path := n.shortestUpPath(src, dst)
		if path == nil {
			n.stats.NoRoute++
			return
		}
		p.path = path[1:] // exclude src itself
	}
	n.arrive(src, -1, p)
	// A flooding source forwards to all neighbours via arrive; a
	// path-routing source just queued to its first hop. If src IS dst
	// (not allowed by Endpoint) arrive already delivered.
}

// shortestUpPath runs BFS over up links and up nodes. Caller holds n.mu.
func (n *Network) shortestUpPath(src, dst int) []int {
	if n.nodeDown[src] || n.nodeDown[dst] {
		return nil
	}
	prev := map[int]int{src: src}
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			var path []int
			for v := dst; ; v = prev[v] {
				path = append([]int{v}, path...)
				if v == src {
					return path
				}
			}
		}
		for _, v := range n.adj[u] {
			if _, seen := prev[v]; seen || !n.up[edge{u, v}] || n.nodeDown[v] {
				continue
			}
			prev[v] = u
			queue = append(queue, v)
		}
	}
	return nil
}

// Endpoint is one station's attachment to the network.
type Endpoint struct {
	net  *Network
	node int
	peer int
	mode Mode

	closeOnce sync.Once
	closed    chan struct{}
}

// Send implements the PacketConn contract.
func (e *Endpoint) Send(p []byte) error {
	select {
	case <-e.net.stop:
		return errClosed
	case <-e.closed:
		return errClosed
	default:
	}
	e.net.inject(e.node, e.peer, e.mode, p)
	return nil
}

// Recv implements the PacketConn contract.
func (e *Endpoint) Recv() ([]byte, error) {
	e.net.mu.Lock()
	ch := e.net.inbox[e.node]
	e.net.mu.Unlock()
	select {
	case p := <-ch:
		return p, nil
	case <-e.net.stop:
		return nil, errClosed
	case <-e.closed:
		return nil, errClosed
	}
}

// Close detaches the endpoint (the network keeps running; use
// Network.Close to stop everything).
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() { close(e.closed) })
	return nil
}

var errClosed = errors.New("transport: closed")

// dedup is a bounded set of packet ids with FIFO eviction.
type dedup struct {
	cap   int
	set   map[uint64]struct{}
	order []uint64
}

func newDedup(capacity int) *dedup {
	return &dedup{cap: capacity, set: make(map[uint64]struct{}, capacity)}
}

func (d *dedup) contains(id uint64) bool {
	_, ok := d.set[id]
	return ok
}

func (d *dedup) add(id uint64) {
	if len(d.order) >= d.cap {
		old := d.order[0]
		d.order = d.order[1:]
		delete(d.set, old)
	}
	d.set[id] = struct{}{}
	d.order = append(d.order, id)
}

// Line returns the edges of a line topology over n nodes.
func Line(n int) [][2]int {
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return edges
}

// Ring returns the edges of a ring topology over n nodes.
func Ring(n int) [][2]int {
	edges := Line(n)
	if n > 2 {
		edges = append(edges, [2]int{n - 1, 0})
	}
	return edges
}

// Grid returns the edges of a w x h grid (nodes numbered row-major).
func Grid(w, h int) [][2]int {
	var edges [][2]int
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := y*w + x
			if x+1 < w {
				edges = append(edges, [2]int{id, id + 1})
			}
			if y+1 < h {
				edges = append(edges, [2]int{id, id + w})
			}
		}
	}
	return edges
}
