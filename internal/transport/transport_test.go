package transport

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"ghm/internal/netlink"
)

var _ netlink.PacketConn = (*Endpoint)(nil)

func TestTopologyHelpers(t *testing.T) {
	tests := []struct {
		name  string
		edges [][2]int
		want  int
	}{
		{name: "line5", edges: Line(5), want: 4},
		{name: "ring5", edges: Ring(5), want: 5},
		{name: "ring2", edges: Ring(2), want: 1},
		{name: "grid3x3", edges: Grid(3, 3), want: 12},
		{name: "grid1x4", edges: Grid(1, 4), want: 3},
	}
	for _, tt := range tests {
		if got := len(tt.edges); got != tt.want {
			t.Errorf("%s: %d edges, want %d", tt.name, got, tt.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 1}); err == nil {
		t.Error("1-node network accepted")
	}
	if _, err := New(Config{Nodes: 3, Edges: [][2]int{{0, 5}}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := New(Config{Nodes: 3, Edges: [][2]int{{1, 1}}}); err == nil {
		t.Error("self-loop accepted")
	}
	n, err := New(Config{Nodes: 3, Edges: Line(3), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.Endpoint(0, 9, Flooding); err == nil {
		t.Error("invalid peer accepted")
	}
	if _, err := n.Endpoint(0, 2, Mode(9)); err == nil {
		t.Error("invalid mode accepted")
	}
}

func relayRoundTrip(t *testing.T, mode Mode) {
	t.Helper()
	n, err := New(Config{
		Nodes: 5, Edges: Ring(5), Seed: 2,
		TickEvery: 20 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	src, err := n.Endpoint(0, 2, mode)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := n.Endpoint(2, 0, mode)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Send([]byte("across")); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Recv()
	if err != nil || !bytes.Equal(got, []byte("across")) {
		t.Fatalf("Recv = %q, %v", got, err)
	}
}

func TestFloodingDelivers(t *testing.T)    { relayRoundTrip(t, Flooding) }
func TestPathRoutingDelivers(t *testing.T) { relayRoundTrip(t, PathRouting) }

func TestFloodingCostExceedsPathCost(t *testing.T) {
	run := func(mode Mode) Stats {
		n, err := New(Config{
			Nodes: 9, Edges: Grid(3, 3), Seed: 3,
			TickEvery: 20 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		src, _ := n.Endpoint(0, 8, mode)
		dst, _ := n.Endpoint(8, 0, mode)
		for i := 0; i < 20; i++ {
			if err := src.Send([]byte(fmt.Sprintf("p%d", i))); err != nil {
				t.Fatal(err)
			}
			if _, err := dst.Recv(); err != nil {
				t.Fatal(err)
			}
		}
		return n.Stats()
	}
	flood := run(Flooding)
	path := run(PathRouting)
	if flood.Traversals <= path.Traversals {
		t.Errorf("flooding traversals %d not above path traversals %d",
			flood.Traversals, path.Traversals)
	}
}

func TestPathRoutingReroutesAroundDeadLink(t *testing.T) {
	// Ring of 4: 0-1-2-3-0. Kill 0-1; the 0->2 path must go via 3.
	n, err := New(Config{
		Nodes: 4, Edges: Ring(4), Seed: 4,
		TickEvery: 20 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetLink(0, 1, false)
	src, _ := n.Endpoint(0, 2, PathRouting)
	dst, _ := n.Endpoint(2, 0, PathRouting)
	if err := src.Send([]byte("detour")); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Recv()
	if err != nil || !bytes.Equal(got, []byte("detour")) {
		t.Fatalf("Recv = %q, %v", got, err)
	}
}

func TestPathRoutingNoRouteCounted(t *testing.T) {
	n, err := New(Config{
		Nodes: 3, Edges: Line(3), Seed: 5,
		TickEvery: 20 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetLink(0, 1, false) // disconnect node 0 entirely
	src, _ := n.Endpoint(0, 2, PathRouting)
	if err := src.Send([]byte("void")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for n.Stats().NoRoute == 0 {
		if time.Now().After(deadline) {
			t.Fatal("NoRoute never counted")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGHMSessionOverNetwork(t *testing.T) {
	// The headline composition: GHM end-to-end over a lossy, failing
	// multi-hop network, for both relay strategies.
	for _, mode := range []Mode{Flooding, PathRouting} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			n, err := New(Config{
				Nodes: 9, Edges: Grid(3, 3),
				Loss: 0.05, FailProb: 0.002, RepairProb: 0.2,
				Seed: 6, TickEvery: 20 * time.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			srcConn, _ := n.Endpoint(0, 8, mode)
			dstConn, _ := n.Endpoint(8, 0, mode)

			s, err := netlink.NewSender(srcConn, netlink.SenderConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			r, err := netlink.NewReceiver(dstConn, netlink.ReceiverConfig{
				RetryInterval: 300 * time.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			const msgs = 10
			errc := make(chan error, 1)
			go func() {
				for i := 0; i < msgs; i++ {
					if err := s.Send(ctx, []byte(fmt.Sprintf("net-%d", i))); err != nil {
						errc <- fmt.Errorf("send %d: %w", i, err)
						return
					}
				}
				errc <- nil
			}()
			for i := 0; i < msgs; i++ {
				got, err := r.Recv(ctx)
				if err != nil {
					t.Fatalf("Recv %d: %v", i, err)
				}
				if want := fmt.Sprintf("net-%d", i); string(got) != want {
					t.Fatalf("Recv %d = %q, want %q", i, got, want)
				}
			}
			if err := <-errc; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestNodeCrashReroutesAndRecovers(t *testing.T) {
	// Ring of 6: the 0->3 shortest path goes through 1,2 or 5,4. Crash
	// node 1: path routing must detour through the other side; revive it
	// and traffic keeps flowing.
	n, err := New(Config{
		Nodes: 6, Edges: Ring(6), Seed: 9,
		TickEvery: 20 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	src, _ := n.Endpoint(0, 3, PathRouting)
	dst, _ := n.Endpoint(3, 0, PathRouting)

	n.SetNode(1, false)
	if err := src.Send([]byte("around")); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Recv()
	if err != nil || !bytes.Equal(got, []byte("around")) {
		t.Fatalf("Recv with node down = %q, %v", got, err)
	}

	n.SetNode(1, true)
	if err := src.Send([]byte("after")); err != nil {
		t.Fatal(err)
	}
	got, err = dst.Recv()
	if err != nil || !bytes.Equal(got, []byte("after")) {
		t.Fatalf("Recv after revive = %q, %v", got, err)
	}
}

func TestNodeCrashDisconnectsFlooding(t *testing.T) {
	// Line 0-1-2: node 1 down cuts flooding entirely; packets are lost,
	// not queued forever.
	n, err := New(Config{
		Nodes: 3, Edges: Line(3), Seed: 10,
		TickEvery: 20 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	src, _ := n.Endpoint(0, 2, Flooding)
	dst, _ := n.Endpoint(2, 0, Flooding)

	n.SetNode(1, false)
	if err := src.Send([]byte("blocked")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for n.Stats().Lost == 0 {
		if time.Now().After(deadline) {
			t.Fatal("packet neither delivered nor counted lost")
		}
		time.Sleep(time.Millisecond)
	}

	// Revive and verify the network recovered (dedup memory was erased,
	// which must not break forwarding of fresh packets).
	n.SetNode(1, true)
	if err := src.Send([]byte("through")); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Recv()
	if err != nil || !bytes.Equal(got, []byte("through")) {
		t.Fatalf("Recv after revive = %q, %v", got, err)
	}
}

func TestCrashedSourceCannotInject(t *testing.T) {
	n, err := New(Config{Nodes: 2, Edges: Line(2), Seed: 11,
		TickEvery: 20 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	src, _ := n.Endpoint(0, 1, Flooding)
	n.SetNode(0, false)
	if err := src.Send([]byte("ghost")); err != nil {
		t.Fatal(err) // Send succeeds; the packet just goes nowhere
	}
	deadline := time.Now().Add(time.Second)
	for n.Stats().Lost == 0 {
		if time.Now().After(deadline) {
			t.Fatal("injection from crashed node not counted lost")
		}
		time.Sleep(time.Millisecond)
	}
	if n.Stats().DeliveredE != 0 {
		t.Fatal("crashed node delivered traffic")
	}
}

func TestGHMSurvivesRelayCrashes(t *testing.T) {
	// End-to-end: GHM over the grid while interior relays crash and
	// recover; the stream must stay ordered and complete.
	n, err := New(Config{
		Nodes: 9, Edges: Grid(3, 3), Loss: 0.05,
		Seed: 12, TickEvery: 20 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	srcConn, _ := n.Endpoint(0, 8, PathRouting)
	dstConn, _ := n.Endpoint(8, 0, PathRouting)
	s, err := netlink.NewSender(srcConn, netlink.SenderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := netlink.NewReceiver(dstConn, netlink.ReceiverConfig{
		RetryInterval: 300 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		relays := []int{1, 3, 4, 5, 7}
		i := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
				node := relays[i%len(relays)]
				n.SetNode(node, false)
				time.Sleep(2 * time.Millisecond)
				n.SetNode(node, true)
				i++
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const msgs = 8
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < msgs; i++ {
			if err := s.Send(ctx, []byte(fmt.Sprintf("relay-%d", i))); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < msgs; i++ {
		got, err := r.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("relay-%d", i); string(got) != want {
			t.Fatalf("recv %d = %q, want %q", i, got, want)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestEndpointCloseUnblocksRecv(t *testing.T) {
	n, err := New(Config{Nodes: 2, Edges: Line(2), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ep, _ := n.Endpoint(0, 1, Flooding)
	errc := make(chan error, 1)
	go func() {
		_, err := ep.Recv()
		errc <- err
	}()
	time.Sleep(2 * time.Millisecond)
	ep.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Recv returned nil after Close")
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock")
	}
	if err := ep.Send([]byte("x")); err == nil {
		t.Fatal("Send on closed endpoint succeeded")
	}
}

func TestNetworkCloseIdempotentAndUnblocks(t *testing.T) {
	n, err := New(Config{Nodes: 2, Edges: Line(2), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ep, _ := n.Endpoint(1, 0, Flooding)
	errc := make(chan error, 1)
	go func() {
		_, err := ep.Recv()
		errc <- err
	}()
	time.Sleep(2 * time.Millisecond)
	n.Close()
	n.Close()
	if err := <-errc; err == nil {
		t.Fatal("Recv survived network close")
	}
}
