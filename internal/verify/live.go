package verify

import (
	"sync"

	"ghm/internal/trace"
)

// Live adapts Checker for use as an event tap on live netlink stations:
// Observe is safe to call from the sender's and the receiver's goroutines
// concurrently, and events are checked in arrival order — which, because
// each station emits its events at the action's commit point (under the
// station lock, before dependent packets leave), is a legitimate
// interleaving of the real execution. Feeding both stations' taps into one
// Live turns every chaos run and soak test into a mechanical check of the
// paper's Section 2.6 conditions.
//
// The zero value is ready to use.
type Live struct {
	mu   sync.Mutex
	c    Checker
	step int
}

// Observe records one station event; it has the signature netlink taps
// expect. Steps are assigned in arrival order.
func (l *Live) Observe(e trace.Event) {
	l.mu.Lock()
	e.Step = l.step
	l.step++
	l.c.Observe(e)
	l.mu.Unlock()
}

// Report returns the verification state so far.
func (l *Live) Report() Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Report()
}
