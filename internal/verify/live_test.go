package verify

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"ghm/internal/trace"
)

func TestLiveMatchesBatchChecker(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindSendMsg, Msg: "a"},
		{Kind: trace.KindReceiveMsg, Msg: "a"},
		{Kind: trace.KindOK},
		{Kind: trace.KindSendMsg, Msg: "b"},
		{Kind: trace.KindCrashT},
		{Kind: trace.KindSendMsg, Msg: "c"},
		{Kind: trace.KindReceiveMsg, Msg: "c"},
		{Kind: trace.KindCrashR},
		{Kind: trace.KindOK},
	}
	var l Live
	for _, e := range events {
		l.Observe(e)
	}
	if got, want := l.Report(), Check(events); !reflect.DeepEqual(got, want) {
		t.Errorf("live report = %+v, batch = %+v", got, want)
	}
}

func TestLiveConcurrentObservers(t *testing.T) {
	var l Live
	const perSide = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			l.Observe(trace.Event{Kind: trace.KindSendMsg, Msg: fmt.Sprintf("s-%d", i)})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			l.Observe(trace.Event{Kind: trace.KindCrashR})
		}
	}()
	wg.Wait()
	r := l.Report()
	if r.Sent != perSide || r.CrashR != perSide {
		t.Errorf("report = %+v, want %d sends and %d crashes", r, perSide, perSide)
	}
}
