// Package verify mechanically checks a recorded execution against the
// correctness conditions of the paper's Section 2.6.
//
// The conditions are stated over executions of the composed system
// (transmitter, receiver, channels, adversary); ghm/internal/sim records
// such executions as ghm/internal/trace logs, and Check walks one log
// counting violations of each condition:
//
//   - causality: every receive_msg(m) has a unique earlier send_msg(m).
//   - order: every OK for message m has a receive_msg(m) between the
//     send_msg(m) and the OK.
//   - no duplication: m is not delivered twice without an intervening
//     crash^R.
//   - no replay: a delivery of m is a replay when m was already completed
//     (OK'd, or abandoned by crash^T) before the receiver's most recent
//     refresh point (its last receive_msg or crash^R), which is exactly
//     the M_alpha formulation of Theorem 7.
//
// Liveness is a property of infinite executions; the simulator reports it
// as "completed within the step budget" instead.
package verify

import (
	"fmt"
	"strings"

	"ghm/internal/trace"
)

// maxExamples bounds how many violating message ids each list retains.
const maxExamples = 8

// Report summarizes the checks over one execution.
type Report struct {
	// Sent, Delivered, OKs, CrashT, CrashR count the respective actions.
	Sent, Delivered, OKs, CrashT, CrashR int

	// Causality counts deliveries of never-sent messages.
	Causality int
	// Order counts OK events whose message was not delivered between its
	// send_msg and the OK.
	Order int
	// Duplication counts re-deliveries with no crash^R since the previous
	// delivery of the same message.
	Duplication int
	// Replay counts deliveries of messages completed before the
	// receiver's last refresh point.
	Replay int

	// CausalityExamples etc. retain up to maxExamples offending message ids.
	CausalityExamples, OrderExamples, DuplicationExamples, ReplayExamples []string
}

// Violations returns the total number of condition violations.
func (r Report) Violations() int {
	return r.Causality + r.Order + r.Duplication + r.Replay
}

// Clean reports whether no condition was violated.
func (r Report) Clean() bool { return r.Violations() == 0 }

// String implements fmt.Stringer with a one-line summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent=%d delivered=%d ok=%d crashT=%d crashR=%d",
		r.Sent, r.Delivered, r.OKs, r.CrashT, r.CrashR)
	if r.Clean() {
		b.WriteString(" clean")
	} else {
		fmt.Fprintf(&b, " VIOLATIONS causality=%d order=%d dup=%d replay=%d",
			r.Causality, r.Order, r.Duplication, r.Replay)
	}
	return b.String()
}

// Checker verifies an execution incrementally: feed every event to
// Observe and read the Report at any point. Streaming matters because
// hostile-adversary executions run to tens of millions of packet events;
// the checker's state stays proportional to the number of distinct
// messages. The zero value is ready to use.
type Checker struct {
	r Report

	idx         int
	sentAt      map[string]int
	deliveredAt map[string][]int
	completedAt map[string]int
	lastCrashR  int
	lastRefresh int
	inFlight    string
	hasInFlight bool
	init        bool
}

func (c *Checker) ensure() {
	if c.init {
		return
	}
	c.sentAt = make(map[string]int)
	c.deliveredAt = make(map[string][]int)
	c.completedAt = make(map[string]int)
	c.lastCrashR = -1
	c.lastRefresh = -1
	c.init = true
}

// Observe feeds one event. Packet-level events are ignored; only the
// higher-layer actions participate in the Section 2.6 conditions.
func (c *Checker) Observe(e trace.Event) {
	c.ensure()
	i := c.idx
	c.idx++
	switch e.Kind {
	case trace.KindSendMsg:
		c.r.Sent++
		c.sentAt[e.Msg] = i
		c.inFlight, c.hasInFlight = e.Msg, true

	case trace.KindReceiveMsg:
		c.r.Delivered++
		m := e.Msg

		if _, ok := c.sentAt[m]; !ok {
			c.r.Causality++
			c.r.CausalityExamples = addExample(c.r.CausalityExamples, m)
		}

		if prev := c.deliveredAt[m]; len(prev) > 0 && c.lastCrashR < prev[len(prev)-1] {
			// Re-delivered with no crash^R since the previous delivery.
			c.r.Duplication++
			c.r.DuplicationExamples = addExample(c.r.DuplicationExamples, m)
		}

		if done, ok := c.completedAt[m]; ok && done <= c.lastRefresh {
			// m was completed before the receiver's last refresh: the
			// receiver had drawn a fresh challenge since, so this is
			// the replay Theorem 7 makes improbable.
			c.r.Replay++
			c.r.ReplayExamples = addExample(c.r.ReplayExamples, m)
		}

		c.deliveredAt[m] = append(c.deliveredAt[m], i)
		c.lastRefresh = i

	case trace.KindOK:
		c.r.OKs++
		if c.hasInFlight {
			m := c.inFlight
			ok := false
			for _, d := range c.deliveredAt[m] {
				if d > c.sentAt[m] && d < i {
					ok = true
					break
				}
			}
			if !ok {
				c.r.Order++
				c.r.OrderExamples = addExample(c.r.OrderExamples, m)
			}
			if _, done := c.completedAt[m]; !done {
				c.completedAt[m] = i
			}
			c.hasInFlight = false
		}

	case trace.KindCrashT:
		c.r.CrashT++
		if c.hasInFlight {
			// send_msg followed by crash^T: the message joins M_alpha.
			if _, done := c.completedAt[c.inFlight]; !done {
				c.completedAt[c.inFlight] = i
			}
			c.hasInFlight = false
		}

	case trace.KindCrashR:
		c.r.CrashR++
		c.lastCrashR = i
		c.lastRefresh = i
	}
}

// Report returns the verification state so far.
func (c *Checker) Report() Report { return c.r }

// Check walks a complete execution and returns its Report.
func Check(events []trace.Event) Report {
	var c Checker
	for _, e := range events {
		c.Observe(e)
	}
	return c.Report()
}

func addExample(list []string, m string) []string {
	if len(list) < maxExamples {
		list = append(list, m)
	}
	return list
}
