// Package verify mechanically checks a recorded execution against the
// correctness conditions of the paper's Section 2.6.
//
// The conditions are stated over executions of the composed system
// (transmitter, receiver, channels, adversary); ghm/internal/sim records
// such executions as ghm/internal/trace logs, and Check walks one log
// counting violations of each condition:
//
//   - causality: every receive_msg(m) has a unique earlier send_msg(m).
//   - order: every OK for message m has a receive_msg(m) between the
//     send_msg(m) and the OK.
//   - no duplication: m is not delivered twice without an intervening
//     crash^R. Like the replay rule, this is checked per receiver slot:
//     each send_msg on a slot licenses one delivery there, and each
//     crash^R additionally licenses one redelivery on each slot that had
//     m delivered before it — a windowed receiver's slot j redelivering
//     after the crash says nothing about a fresh attempt's first
//     delivery on slot i, because attempts never migrate between slots
//     (the slot index is framed into every packet). At k=1 everything
//     lands on slot 0 and the rule is the original global one.
//   - no replay: a delivery of m is a replay when m was already completed
//     (OK'd, or abandoned by crash^T) before the delivering slot's most
//     recent refresh point (that slot's last receive_msg, or any crash^R),
//     which is the M_alpha formulation of Theorem 7. The refresh point is
//     per slot because it models the receiving session's challenge
//     freshness: on a windowed receiver, slot 5 delivering does not
//     refresh slot 3's challenge, so a straggler delivery on slot 3 from
//     an attempt crash^T abandoned mid-flight is the licensed M_alpha
//     case, not a replay. Single-slot traces put everything on slot 0,
//     where the per-slot rule reduces to the original global one.
//
// The conditions are per *attempt*, not per payload: the buffering higher
// layer that Axiom 1 assumes may legitimately resubmit a payload whose
// earlier attempt was wiped by crash^T (at-least-once across crashes —
// see ghm/internal/outbox), and a fresh send_msg of the same bytes opens
// a new attempt rather than flagging the old one's delivery as a
// duplicate or replay. Concretely, a message sent k times may be
// delivered up to k times without an intervening crash^R and completed up
// to k times before a refresh point; only the k+1-th is a violation.
// When every payload is sent once, the rules reduce exactly to the
// original per-payload conditions.
//
// Windowed stations (ghm/internal/core's WindowedTransmitter) run k
// slots of the protocol at once; their events carry the slot index, and
// the checker keys its in-flight attempts by slot so each OK is matched
// to its own slot's send_msg. Single-slot stations emit slot 0, which is
// also windowed slot 0 — a window of depth 1 verifies identically to the
// original checker. One crash^T completes every slot's in-flight attempt
// at once: the model's crash erases the whole station, never part of it.
//
// Liveness is a property of infinite executions; the simulator reports it
// as "completed within the step budget" instead.
package verify

import (
	"fmt"
	"strings"

	"ghm/internal/trace"
)

// maxExamples bounds how many violating message ids each list retains.
const maxExamples = 8

// Report summarizes the checks over one execution.
type Report struct {
	// Sent, Delivered, OKs, CrashT, CrashR count the respective actions.
	Sent, Delivered, OKs, CrashT, CrashR int

	// Causality counts deliveries of never-sent messages.
	Causality int
	// Order counts OK events whose message was not delivered between its
	// send_msg and the OK.
	Order int
	// Duplication counts re-deliveries with no crash^R since the previous
	// delivery of the same message.
	Duplication int
	// Replay counts deliveries of messages completed before the
	// receiver's last refresh point.
	Replay int

	// CausalityExamples etc. retain up to maxExamples offending message ids.
	CausalityExamples, OrderExamples, DuplicationExamples, ReplayExamples []string
}

// Violations returns the total number of condition violations.
func (r Report) Violations() int {
	return r.Causality + r.Order + r.Duplication + r.Replay
}

// Clean reports whether no condition was violated.
func (r Report) Clean() bool { return r.Violations() == 0 }

// String implements fmt.Stringer with a one-line summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent=%d delivered=%d ok=%d crashT=%d crashR=%d",
		r.Sent, r.Delivered, r.OKs, r.CrashT, r.CrashR)
	if r.Clean() {
		b.WriteString(" clean")
	} else {
		fmt.Fprintf(&b, " VIOLATIONS causality=%d order=%d dup=%d replay=%d",
			r.Causality, r.Order, r.Duplication, r.Replay)
	}
	return b.String()
}

// Checker verifies an execution incrementally: feed every event to
// Observe and read the Report at any point. Streaming matters because
// hostile-adversary executions run to tens of millions of packet events;
// the checker's state stays proportional to the number of distinct
// messages. The zero value is ready to use.
type Checker struct {
	r Report

	idx        int
	msgs       map[string]*msgState
	lastCrashR int
	// refreshed holds each receiver slot's last receive_msg index: the
	// slot's session moved on, so older abandoned attempts on that slot
	// can no longer deliver without a fresh handshake. crash^R refreshes
	// every slot at once (the whole station redraws its randomness), so a
	// slot's effective refresh point is max(refreshed[slot], lastCrashR).
	refreshed map[int]int
	inFlight  map[int]string // slot -> payload awaiting its OK
	init      bool
}

// msgState tracks one payload across all of its send attempts. Sends and
// deliveries are additionally keyed by slot: the slot index is framed
// into every packet, so an attempt admitted on slot s can only ever be
// delivered by the receiver's slot-s machine, and the no-duplication
// allowance (k slot-s sends license k slot-s deliveries, plus one
// crash^R redelivery) is a per-slot budget.
type msgState struct {
	sends           int         // send_msg events for this payload
	slotSends       map[int]int // send_msg events per slot
	lastSentAt      int         // index of the most recent send_msg
	deliveredAt     []int       // indices of every receive_msg
	slotDelivered   map[int][]int
	slotSendUsed    map[int]int // send licenses consumed per slot
	slotCrashUsed   map[int]int // index of the last crash^R license consumed per slot
	completions     int         // OK or crash^T completions granted
	lastCompletedAt int         // index of the most recent completion
}

func (c *Checker) ensure() {
	if c.init {
		return
	}
	c.msgs = make(map[string]*msgState)
	c.inFlight = make(map[int]string)
	c.refreshed = make(map[int]int)
	c.lastCrashR = -1
	c.init = true
}

// complete grants one attempt-completion (OK or crash^T wipe) to a
// payload, capped at its send count.
func (c *Checker) complete(st *msgState, i int) {
	if st.completions < st.sends {
		st.completions++
		st.lastCompletedAt = i
	}
}

func (c *Checker) state(m string) *msgState {
	st, ok := c.msgs[m]
	if !ok {
		st = &msgState{
			lastSentAt:      -1,
			lastCompletedAt: -1,
			slotSends:       make(map[int]int),
			slotDelivered:   make(map[int][]int),
			slotSendUsed:    make(map[int]int),
			slotCrashUsed:   make(map[int]int),
		}
		c.msgs[m] = st
	}
	return st
}

// Observe feeds one event. Packet-level events are ignored; only the
// higher-layer actions participate in the Section 2.6 conditions.
func (c *Checker) Observe(e trace.Event) {
	c.ensure()
	i := c.idx
	c.idx++
	switch e.Kind {
	case trace.KindSendMsg:
		c.r.Sent++
		st := c.state(e.Msg)
		st.sends++
		st.slotSends[e.Slot]++
		st.lastSentAt = i
		c.inFlight[e.Slot] = e.Msg

	case trace.KindReceiveMsg:
		c.r.Delivered++
		st := c.state(e.Msg)

		if st.sends == 0 {
			c.r.Causality++
			c.r.CausalityExamples = addExample(c.r.CausalityExamples, e.Msg)
		}

		// No-duplication: every delivery must be licensed, either by a
		// crash^R that postdates this slot's previous delivery of the
		// payload (the old packet re-accepted against the fresh challenge —
		// one redelivery per crash) or by a send_msg on this slot (each
		// attempt licenses one delivery). The crash license is consumed
		// first: it expires at the next crash^R or never recurs, while send
		// licenses keep, so the greedy order never rejects a legal trace. A
		// crash^R-licensed redelivery on another slot does not touch this
		// slot's budget (attempts never migrate slots — the slot index is
		// framed into every packet); with a single slot everything lands on
		// slot 0 and the rule is the original global one.
		prev := st.slotDelivered[e.Slot]
		switch {
		case len(prev) > 0 && c.lastCrashR > prev[len(prev)-1] &&
			st.slotCrashUsed[e.Slot] < c.lastCrashR:
			st.slotCrashUsed[e.Slot] = c.lastCrashR
		case st.slotSendUsed[e.Slot] < st.slotSends[e.Slot]:
			st.slotSendUsed[e.Slot]++
		case len(prev) > 0:
			c.r.Duplication++
			c.r.DuplicationExamples = addExample(c.r.DuplicationExamples, e.Msg)
		}

		refresh := c.lastCrashR
		if r, ok := c.refreshed[e.Slot]; ok && r > refresh {
			refresh = r
		}
		if st.completions >= st.sends && st.completions > 0 &&
			st.lastCompletedAt <= refresh {
			// Every attempt was completed before this slot's last refresh:
			// the slot's session had drawn a fresh challenge since, so this
			// is the replay Theorem 7 makes improbable. The refresh point is
			// per slot — a windowed receiver's other slots delivering says
			// nothing about this slot's challenge freshness.
			c.r.Replay++
			c.r.ReplayExamples = addExample(c.r.ReplayExamples, e.Msg)
		}

		st.deliveredAt = append(st.deliveredAt, i)
		st.slotDelivered[e.Slot] = append(st.slotDelivered[e.Slot], i)
		c.refreshed[e.Slot] = i

	case trace.KindOK:
		c.r.OKs++
		if m, live := c.inFlight[e.Slot]; live {
			st := c.state(m)
			ok := false
			for _, d := range st.deliveredAt {
				if d > st.lastSentAt && d < i {
					ok = true
					break
				}
			}
			if !ok {
				c.r.Order++
				c.r.OrderExamples = addExample(c.r.OrderExamples, m)
			}
			c.complete(st, i)
			delete(c.inFlight, e.Slot)
		}

	case trace.KindCrashT:
		c.r.CrashT++
		// crash^T erases the whole station: every slot's in-flight attempt
		// joins M_alpha at once (the shared crash model of windowed
		// stations; a single-slot station has at most slot 0 live).
		for slot, m := range c.inFlight {
			c.complete(c.state(m), i)
			delete(c.inFlight, slot)
		}

	case trace.KindCrashR:
		c.r.CrashR++
		c.lastCrashR = i
	}
}

// Report returns the verification state so far.
func (c *Checker) Report() Report { return c.r }

// Check walks a complete execution and returns its Report.
func Check(events []trace.Event) Report {
	var c Checker
	for _, e := range events {
		c.Observe(e)
	}
	return c.Report()
}

func addExample(list []string, m string) []string {
	if len(list) < maxExamples {
		list = append(list, m)
	}
	return list
}
