package verify

import (
	"strings"
	"testing"

	"ghm/internal/trace"
)

// ev builds a minimal event list from a compact spec: "s:m1" send, "r:m1"
// receive, "ok", "ct" crash^T, "cr" crash^R. Windowed stations address
// slots with a digit: "s2:m1" sends on slot 2, "ok2" confirms slot 2,
// "r2:m1" delivers from slot 2; the undecorated forms are slot 0.
func ev(specs ...string) []trace.Event {
	var out []trace.Event
	for i, s := range specs {
		e := trace.Event{Step: i}
		if len(s) > 1 && s[1] >= '0' && s[1] <= '9' && (s[0] == 's' || s[0] == 'r') {
			e.Slot = int(s[1] - '0')
			s = s[:1] + s[2:]
		} else if strings.HasPrefix(s, "ok") && len(s) == 3 {
			e.Slot = int(s[2] - '0')
			s = "ok"
		}
		switch {
		case strings.HasPrefix(s, "s:"):
			e.Kind, e.Msg = trace.KindSendMsg, s[2:]
		case strings.HasPrefix(s, "r:"):
			e.Kind, e.Msg = trace.KindReceiveMsg, s[2:]
		case s == "ok":
			e.Kind = trace.KindOK
		case s == "ct":
			e.Kind = trace.KindCrashT
		case s == "cr":
			e.Kind = trace.KindCrashR
		default:
			panic("bad spec " + s)
		}
		out = append(out, e)
	}
	return out
}

func TestCleanExecution(t *testing.T) {
	r := Check(ev("s:a", "r:a", "ok", "s:b", "r:b", "ok"))
	if !r.Clean() {
		t.Fatalf("clean run flagged: %v", r)
	}
	if r.Sent != 2 || r.Delivered != 2 || r.OKs != 2 {
		t.Errorf("counts: %+v", r)
	}
}

func TestCausalityViolation(t *testing.T) {
	r := Check(ev("s:a", "r:ghost", "r:a", "ok"))
	if r.Causality != 1 {
		t.Fatalf("Causality = %d, want 1 (%v)", r.Causality, r)
	}
	if len(r.CausalityExamples) != 1 || r.CausalityExamples[0] != "ghost" {
		t.Errorf("examples: %v", r.CausalityExamples)
	}
}

func TestOrderViolation(t *testing.T) {
	// OK with no delivery in between.
	r := Check(ev("s:a", "ok"))
	if r.Order != 1 {
		t.Fatalf("Order = %d, want 1 (%v)", r.Order, r)
	}
	// Delivery before the send_msg window does not satisfy order.
	r = Check(ev("r:a", "s:a", "ok"))
	if r.Order != 1 {
		t.Fatalf("early delivery satisfied order: %v", r)
	}
}

func TestDuplicationViolation(t *testing.T) {
	r := Check(ev("s:a", "r:a", "r:a", "ok"))
	if r.Duplication != 1 {
		t.Fatalf("Duplication = %d, want 1 (%v)", r.Duplication, r)
	}
}

func TestDuplicationAllowedAfterCrashR(t *testing.T) {
	r := Check(ev("s:a", "r:a", "cr", "r:a", "ok"))
	if r.Duplication != 0 {
		t.Fatalf("crash^R redelivery flagged as duplication: %v", r)
	}
	if r.Replay != 0 {
		// a was not completed before the crash (no OK/crash^T yet).
		t.Fatalf("in-flight redelivery flagged as replay: %v", r)
	}
}

func TestReplayViolation(t *testing.T) {
	// a completes; receiver refreshes by delivering b; then a reappears.
	r := Check(ev("s:a", "r:a", "ok", "s:b", "r:b", "ok", "r:a"))
	if r.Replay != 1 {
		t.Fatalf("Replay = %d, want 1 (%v)", r.Replay, r)
	}
	// The same redelivery also counts as a duplication (no crash^R).
	if r.Duplication != 1 {
		t.Fatalf("Duplication = %d, want 1 (%v)", r.Duplication, r)
	}
}

func TestReplayAfterCrashRViolation(t *testing.T) {
	// Completed message redelivered after crash^R: allowed as duplication
	// (crash exemption) but still a replay of a completed message.
	r := Check(ev("s:a", "r:a", "ok", "cr", "r:a"))
	if r.Duplication != 0 {
		t.Fatalf("Duplication = %d, want 0 (%v)", r.Duplication, r)
	}
	if r.Replay != 1 {
		t.Fatalf("Replay = %d, want 1 (%v)", r.Replay, r)
	}
}

func TestAbandonedByCrashTIsCompleted(t *testing.T) {
	// send a; crash^T (a joins M_alpha); receiver refreshes via crash^R;
	// then a is delivered: replay.
	r := Check(ev("s:a", "ct", "cr", "r:a"))
	if r.Replay != 1 {
		t.Fatalf("Replay = %d, want 1 (%v)", r.Replay, r)
	}
}

func TestInFlightDeliveryAfterCrashTNotReplay(t *testing.T) {
	// a is abandoned by crash^T but the receiver has NOT refreshed since
	// the abandon: the pending challenge may legitimately complete. The
	// M_alpha formulation only flags deliveries after a refresh point.
	r := Check(ev("s:a", "ct", "r:a"))
	if r.Replay != 0 {
		t.Fatalf("Replay = %d, want 0 (%v)", r.Replay, r)
	}
}

func TestLateDeliveryStraddlingOKNotReplay(t *testing.T) {
	// Second delivery of a after its OK but with no refresh between the
	// first delivery and the OK: per the paper's M_alpha definition this
	// is not a replay, but it is a duplication.
	r := Check(ev("s:a", "r:a", "ok", "r:a"))
	if r.Replay != 0 {
		t.Fatalf("Replay = %d, want 0 (%v)", r.Replay, r)
	}
	if r.Duplication != 1 {
		t.Fatalf("Duplication = %d, want 1 (%v)", r.Duplication, r)
	}
}

func TestCrashCounts(t *testing.T) {
	r := Check(ev("s:a", "ct", "cr", "cr"))
	if r.CrashT != 1 || r.CrashR != 2 {
		t.Fatalf("crash counts: %+v", r)
	}
}

func TestStringSummaries(t *testing.T) {
	clean := Check(ev("s:a", "r:a", "ok"))
	if s := clean.String(); !strings.Contains(s, "clean") {
		t.Errorf("clean String() = %q", s)
	}
	dirty := Check(ev("s:a", "ok"))
	if s := dirty.String(); !strings.Contains(s, "VIOLATIONS") {
		t.Errorf("dirty String() = %q", s)
	}
}

func TestExampleListCapped(t *testing.T) {
	var specs []string
	for i := 0; i < 20; i++ {
		specs = append(specs, "r:ghost"+string(rune('a'+i)))
	}
	r := Check(ev(specs...))
	if r.Causality != 20 {
		t.Fatalf("Causality = %d", r.Causality)
	}
	if len(r.CausalityExamples) != maxExamples {
		t.Fatalf("examples = %d, want %d", len(r.CausalityExamples), maxExamples)
	}
}

func TestEmptyExecution(t *testing.T) {
	r := Check(nil)
	if !r.Clean() || r.Violations() != 0 {
		t.Fatalf("empty execution: %v", r)
	}
}

func TestResubmissionAfterCrashTIsClean(t *testing.T) {
	// The buffering higher layer resubmits a payload whose first attempt
	// was wiped by crash^T: the second send opens a new attempt, so its
	// delivery and OK are clean even after the receiver refreshes.
	r := Check(ev("s:a", "ct", "s:b", "r:b", "ok", "s:a", "r:a", "ok"))
	if !r.Clean() {
		t.Fatalf("resubmission flagged: %v", r)
	}
	if r.Sent != 3 || r.Delivered != 2 || r.OKs != 2 || r.CrashT != 1 {
		t.Errorf("counts: %+v", r)
	}
}

func TestResubmissionLateFirstAttemptDeliveryIsClean(t *testing.T) {
	// Attempt 1 of a is delivered but its OK is lost to crash^T; the
	// resubmitted attempt 2 is then delivered too. Two sends cover two
	// deliveries: neither duplication nor replay.
	r := Check(ev("s:a", "r:a", "ct", "s:a", "r:a", "ok"))
	if !r.Clean() {
		t.Fatalf("two-send/two-delivery run flagged: %v", r)
	}
}

func TestResubmissionThirdDeliveryIsDuplication(t *testing.T) {
	// Two sends license two deliveries; the third without crash^R is a
	// duplication again.
	r := Check(ev("s:a", "r:a", "ct", "s:a", "r:a", "ok", "r:a"))
	if r.Duplication != 1 {
		t.Fatalf("Duplication = %d, want 1 (%v)", r.Duplication, r)
	}
}

func TestWindowedCleanExecution(t *testing.T) {
	// Three slots in flight at once; OKs land out of slot order and each
	// is matched to its own slot's send, so the run is clean.
	r := Check(ev(
		"s0:a", "s1:b", "s2:c",
		"r1:b", "ok1",
		"r0:a", "ok0",
		"r2:c", "ok2",
	))
	if !r.Clean() {
		t.Fatalf("clean windowed run flagged: %v", r)
	}
	if r.Sent != 3 || r.Delivered != 3 || r.OKs != 3 {
		t.Errorf("counts: %+v", r)
	}
}

func TestWindowedOKMatchedToOwnSlot(t *testing.T) {
	// Slot 1's message was delivered; slot 0's was not. An OK on slot 0
	// must not be satisfied by slot 1's delivery: the order violation is
	// attributed to slot 0's payload.
	r := Check(ev("s0:a", "s1:b", "r1:b", "ok1", "ok0"))
	if r.Order != 1 {
		t.Fatalf("Order = %d, want 1 (%v)", r.Order, r)
	}
	if len(r.OrderExamples) != 1 || r.OrderExamples[0] != "a" {
		t.Errorf("order examples: %v", r.OrderExamples)
	}
}

func TestWindowedCrashTCompletesWholeWindow(t *testing.T) {
	// One crash^T abandons every in-flight slot at once (the shared
	// crash model): after the receiver refreshes, a delivery of either
	// payload is a replay.
	r := Check(ev("s0:a", "s1:b", "s2:c", "ct", "cr", "r0:a", "r2:c"))
	if r.Replay != 2 {
		t.Fatalf("Replay = %d, want 2 (%v)", r.Replay, r)
	}
}

func TestWindowedResubmissionAfterWipeIsClean(t *testing.T) {
	// The wipe abandons both slots; both payloads are resubmitted
	// (possibly on different slots) and confirmed: k sends license k
	// deliveries, clean end to end.
	r := Check(ev(
		"s0:a", "s1:b", "ct",
		"s1:a", "s0:b",
		"r1:a", "ok1", "r0:b", "ok0",
	))
	if !r.Clean() {
		t.Fatalf("windowed resubmission flagged: %v", r)
	}
	if r.Sent != 4 || r.OKs != 2 || r.CrashT != 1 {
		t.Errorf("counts: %+v", r)
	}
}

func TestWindowedStaleSlotOKHasNoAttempt(t *testing.T) {
	// An OK on a slot with nothing in flight (stale, post-wipe) is
	// counted but attributed to no attempt — same contract as the
	// single-slot checker's unmatched OK.
	r := Check(ev("s0:a", "ct", "ok0"))
	if r.OKs != 1 {
		t.Fatalf("OKs = %d, want 1 (%v)", r.OKs, r)
	}
	if r.Order != 0 {
		t.Fatalf("stale OK raised an order violation: %v", r)
	}
}

func TestResubmissionReplayAfterAllAttemptsComplete(t *testing.T) {
	// Both attempts of a complete, the receiver refreshes (r:b), and a
	// third copy of a arrives: every attempt was already completed before
	// the refresh, so this is a replay (and a duplication: no crash^R).
	r := Check(ev("s:a", "r:a", "ct", "s:a", "r:a", "ok", "s:b", "r:b", "ok", "r:a"))
	if r.Replay != 1 {
		t.Fatalf("Replay = %d, want 1 (%v)", r.Replay, r)
	}
	if r.Duplication != 1 {
		t.Fatalf("Duplication = %d, want 1 (%v)", r.Duplication, r)
	}
}

func TestWindowedStragglerDeliveryIsNotReplay(t *testing.T) {
	// Slot 1's attempt is abandoned by crash^T with its data already in
	// flight; slot 2 keeps delivering, then slot 1's straggler lands.
	// Other slots' deliveries do not refresh slot 1's challenge, so this
	// is the licensed M_alpha delivery, not a replay.
	r := Check(ev("s1:a", "ct", "s2:b", "r2:b", "ok2", "r1:a"))
	if !r.Clean() {
		t.Fatalf("cross-slot straggler flagged: %v", r)
	}

	// The same straggler after the slot's own session moved on IS a
	// replay: slot 1 delivered a newer transfer first.
	r = Check(ev("s1:a", "ct", "s1:b", "r1:b", "ok1", "r1:a"))
	if r.Replay != 1 {
		t.Fatalf("Replay = %d, want 1 (%v)", r.Replay, r)
	}

	// crash^R refreshes every slot at once: the whole station redraws its
	// randomness, so the straggler is a replay on any slot afterwards.
	r = Check(ev("s1:a", "ct", "cr", "r1:a"))
	if r.Replay != 1 {
		t.Fatalf("Replay after crash^R = %d, want 1 (%v)", r.Replay, r)
	}
}

func TestWindowedCrashRedeliveryPlusFreshAttemptNotDup(t *testing.T) {
	// The windowed chaos-flake trace: attempt 1 of a (slot 2) delivers,
	// crash^R leaves its DATA packet facing a fresh tau_crash challenge,
	// crash^T wipes the window and the payload is resubmitted on slot 4.
	// Slot 2 then redelivers (licensed by the crash^R) and slot 4's fresh
	// attempt delivers for the first time. Three deliveries, two sends —
	// but per slot every delivery is licensed: slot 2 consumed its own
	// crash^R allowance, and slot 4's first delivery never needed one.
	r := Check(ev("s2:a", "r2:a", "cr", "ct", "s4:a", "r2:a", "r4:a"))
	if r.Duplication != 0 {
		t.Fatalf("Duplication = %d, want 0 (%v)", r.Duplication, r)
	}
	if !r.Clean() {
		t.Fatalf("licensed windowed trace flagged: %v", r)
	}

	// Order independence: the fresh attempt may land before the straggler.
	r = Check(ev("s2:a", "r2:a", "cr", "ct", "s4:a", "r4:a", "r2:a"))
	if !r.Clean() {
		t.Fatalf("licensed windowed trace (swapped) flagged: %v", r)
	}
}

func TestCrashRedeliveryThenResubmissionSameSlotNotDup(t *testing.T) {
	// Same-slot variant of the chaos flake: attempt 1 delivers, crash^R
	// licenses a redelivery, crash^T wipes the window and the payload is
	// resubmitted on the SAME slot, whose delivery then lands after the
	// redelivery. Three deliveries = two sends + one crash^R license; the
	// redelivery must consume the crash license, not the second send's.
	r := Check(ev("s1:a", "r1:a", "cr", "r1:a", "ct", "s1:a", "r1:a"))
	if r.Duplication != 0 {
		t.Fatalf("Duplication = %d, want 0 (%v)", r.Duplication, r)
	}

	// With the redelivery and the fresh delivery swapped the trace is
	// equally legal (the crash license has no expiry before the next
	// crash^R).
	r = Check(ev("s1:a", "r1:a", "cr", "ct", "s1:a", "r1:a", "r1:a"))
	if r.Duplication != 0 {
		t.Fatalf("Duplication (swapped) = %d, want 0 (%v)", r.Duplication, r)
	}

	// A fourth delivery exceeds every license: duplication.
	r = Check(ev("s1:a", "r1:a", "cr", "r1:a", "ct", "s1:a", "r1:a", "r1:a"))
	if r.Duplication != 1 {
		t.Fatalf("Duplication beyond budget = %d, want 1 (%v)", r.Duplication, r)
	}
}

func TestConsecutiveCrashRsGrantOneLicense(t *testing.T) {
	// Two crash^Rs with no delivery between them license only one
	// redelivery: after the first post-crash acceptance the receiver's
	// challenge has moved on, so a second win is the improbable event.
	r := Check(ev("s:a", "r:a", "cr", "cr", "r:a", "r:a"))
	if r.Duplication != 1 {
		t.Fatalf("Duplication = %d, want 1 (%v)", r.Duplication, r)
	}

	// A crash^R after each delivery licenses one redelivery each.
	r = Check(ev("s:a", "r:a", "cr", "r:a", "cr", "r:a"))
	if r.Duplication != 0 {
		t.Fatalf("Duplication with per-crash licenses = %d, want 0 (%v)", r.Duplication, r)
	}
}

func TestWindowedPerSlotDupStillCaught(t *testing.T) {
	// The per-slot budget does not weaken the condition inside a slot: a
	// second slot-2 delivery with no crash^R between is a duplication.
	r := Check(ev("s2:a", "r2:a", "r2:a"))
	if r.Duplication != 1 {
		t.Fatalf("Duplication = %d, want 1 (%v)", r.Duplication, r)
	}

	// One crash^R licenses one redelivery per slot, not two: the third
	// slot-2 delivery after a single crash is a duplication again.
	r = Check(ev("s2:a", "r2:a", "cr", "r2:a", "r2:a"))
	if r.Duplication != 1 {
		t.Fatalf("Duplication after exhausted crash budget = %d, want 1 (%v)", r.Duplication, r)
	}
}
