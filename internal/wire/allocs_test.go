package wire

import (
	mathrand "math/rand"
	"testing"

	"ghm/internal/bitstr"
)

// TestCodecAllocBudget pins the codec's per-packet allocation budget so
// hot-path regressions fail loudly:
//
//   - AppendData/AppendCtl into a buffer with capacity: 0 allocs — the
//     form the engine's pooled send path uses.
//   - Encode: exactly the one output-slice allocation.
//   - DecodeData/DecodeCtl: 2 allocs (one bit-string header each for rho
//     and tau; Msg aliases the input).
func TestCodecAllocBudget(t *testing.T) {
	src := bitstr.NewMathSource(mathrand.New(mathrand.NewSource(1)))
	rho, tau := src.Draw(64), src.Draw(64)
	d := Data{Msg: []byte("0123456789abcdef0123456789abcdef"), Rho: rho, Tau: tau}
	c := Ctl{Rho: rho, Tau: tau, I: 7}
	dp, cp := d.Encode(), c.Encode()

	buf := make([]byte, 0, 512)
	check := func(name string, want float64, fn func()) {
		t.Helper()
		if got := testing.AllocsPerRun(200, fn); got > want {
			t.Errorf("%s: %v allocs/op, budget %v", name, got, want)
		}
	}
	check("AppendData", 0, func() { buf = AppendData(buf[:0], d) })
	check("AppendCtl", 0, func() { buf = AppendCtl(buf[:0], c) })
	check("Data.Encode", 1, func() { d.Encode() })
	check("Ctl.Encode", 1, func() { c.Encode() })
	check("DecodeData", 2, func() {
		if _, err := DecodeData(dp); err != nil {
			t.Fatal(err)
		}
	})
	check("DecodeCtl", 2, func() {
		if _, err := DecodeCtl(cp); err != nil {
			t.Fatal(err)
		}
	})

	// Append output must byte-for-byte match Encode (one encoding per
	// value is a protocol invariant the receiver relies on).
	if string(AppendData(nil, d)) != string(dp) || string(AppendCtl(nil, c)) != string(cp) {
		t.Fatal("Append and Encode disagree")
	}
}
