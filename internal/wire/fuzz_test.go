package wire

import (
	"bytes"
	"testing"

	"ghm/internal/bitstr"
)

func FuzzDecodeData(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(KindData)})
	f.Add(Data{Msg: []byte("seed"), Rho: bitstr.MustBinary("10110"), Tau: bitstr.One()}.Encode())
	f.Add(Ctl{Rho: bitstr.One(), Tau: bitstr.One(), I: 3}.Encode())
	f.Fuzz(func(t *testing.T, in []byte) {
		d, err := DecodeData(in)
		if err != nil {
			return
		}
		// Any accepted packet must re-encode to exactly the input: the
		// format admits a single encoding per value, so an adversary
		// cannot alias two packets.
		if got := d.Encode(); !bytes.Equal(got, in) {
			t.Fatalf("re-encode mismatch:\n in=%x\nout=%x", in, got)
		}
	})
}

func FuzzDecodeCtl(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(KindCtl)})
	f.Add(Ctl{Rho: bitstr.MustBinary("101"), Tau: bitstr.MustBinary("0110"), I: 42}.Encode())
	f.Fuzz(func(t *testing.T, in []byte) {
		c, err := DecodeCtl(in)
		if err != nil {
			return
		}
		if got := c.Encode(); !bytes.Equal(got, in) {
			t.Fatalf("re-encode mismatch:\n in=%x\nout=%x", in, got)
		}
	})
}
