// Package wire defines the packet formats exchanged by the protocol
// stations and their binary encoding.
//
// Two packet kinds exist, mirroring the paper's Appendix A:
//
//   - DATA, sent transmitter -> receiver: (m, rho, tau), where m is the
//     message body, rho echoes the receiver's current challenge and tau is
//     the transmitter's tag for this transfer.
//   - CTL, sent receiver -> transmitter: (rho, tau, i), where rho is the
//     receiver's current challenge, tau is the tag of the last delivered
//     message and i is the retry counter used by the transmitter to
//     discard stale duplicates (Theorem 9's i^R).
//
// The encoding is deliberately simple and self-delimiting: a one-byte kind
// tag followed by length-prefixed fields. Decoding is defensive — any
// malformed input yields ErrMalformed rather than a panic, because packets
// arrive from an unreliable (and possibly adversarial) link.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ghm/internal/bitstr"
)

// Kind discriminates the two packet formats.
type Kind byte

const (
	// KindData tags a transmitter -> receiver data packet.
	KindData Kind = iota + 1
	// KindCtl tags a receiver -> transmitter control packet.
	KindCtl
)

// ErrMalformed reports that a byte slice is not a valid packet encoding.
var ErrMalformed = errors.New("wire: malformed packet")

// maxMessageLen bounds decoded message bodies; it protects the decoder
// against absurd length prefixes in corrupted or hostile inputs.
const maxMessageLen = 1 << 26 // 64 MiB

// Data is the transmitter -> receiver packet (m, rho, tau).
type Data struct {
	Msg []byte     // application message body
	Rho bitstr.Str // echoed receiver challenge
	Tau bitstr.Str // transmitter tag
}

// Ctl is the receiver -> transmitter packet (rho, tau, i).
type Ctl struct {
	Rho bitstr.Str // receiver's current challenge
	Tau bitstr.Str // tag of the last delivered message
	I   uint64     // retry counter since the last delivery or crash
}

// Encode serializes d.
func (d Data) Encode() []byte {
	return AppendData(make([]byte, 0, d.size()), d)
}

// AppendData appends d's encoding to dst and returns the extended slice.
// With sufficient capacity in dst it does not allocate — the hot-path
// form for pooled packet buffers (guarded by testing.AllocsPerRun).
func AppendData(dst []byte, d Data) []byte {
	dst = append(dst, byte(KindData))
	dst = appendBytes(dst, d.Msg)
	dst = d.Rho.AppendWire(dst)
	dst = d.Tau.AppendWire(dst)
	return dst
}

func (d Data) size() int {
	return 1 + uvarintLen(uint64(len(d.Msg))) + len(d.Msg) + d.Rho.WireSize() + d.Tau.WireSize()
}

// Encode serializes c.
func (c Ctl) Encode() []byte {
	return AppendCtl(make([]byte, 0, c.size()), c)
}

// AppendCtl appends c's encoding to dst and returns the extended slice.
// With sufficient capacity in dst it does not allocate.
func AppendCtl(dst []byte, c Ctl) []byte {
	dst = append(dst, byte(KindCtl))
	dst = c.Rho.AppendWire(dst)
	dst = c.Tau.AppendWire(dst)
	dst = binary.AppendUvarint(dst, c.I)
	return dst
}

func (c Ctl) size() int {
	return 1 + c.Rho.WireSize() + c.Tau.WireSize() + uvarintLen(c.I)
}

// Sniff returns the kind of an encoded packet without decoding it fully.
func Sniff(p []byte) (Kind, error) {
	if len(p) == 0 {
		return 0, ErrMalformed
	}
	k := Kind(p[0])
	if k != KindData && k != KindCtl {
		return 0, fmt.Errorf("%w: unknown kind %d", ErrMalformed, p[0])
	}
	return k, nil
}

// DecodeData parses a DATA packet. The returned Msg aliases p; callers that
// retain it across reuses of p must copy it.
func DecodeData(p []byte) (Data, error) {
	if k, err := Sniff(p); err != nil || k != KindData {
		return Data{}, ErrMalformed
	}
	rest := p[1:]
	msg, rest, err := parseBytes(rest)
	if err != nil {
		return Data{}, err
	}
	rho, rest, err := bitstr.ParseWire(rest)
	if err != nil {
		return Data{}, fmt.Errorf("%w: rho: %v", ErrMalformed, err)
	}
	tau, rest, err := bitstr.ParseWire(rest)
	if err != nil {
		return Data{}, fmt.Errorf("%w: tau: %v", ErrMalformed, err)
	}
	if len(rest) != 0 {
		return Data{}, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(rest))
	}
	return Data{Msg: msg, Rho: rho, Tau: tau}, nil
}

// DecodeCtl parses a CTL packet.
func DecodeCtl(p []byte) (Ctl, error) {
	if k, err := Sniff(p); err != nil || k != KindCtl {
		return Ctl{}, ErrMalformed
	}
	rest := p[1:]
	rho, rest, err := bitstr.ParseWire(rest)
	if err != nil {
		return Ctl{}, fmt.Errorf("%w: rho: %v", ErrMalformed, err)
	}
	tau, rest, err := bitstr.ParseWire(rest)
	if err != nil {
		return Ctl{}, fmt.Errorf("%w: tau: %v", ErrMalformed, err)
	}
	i, n := binary.Uvarint(rest)
	if n <= 0 || n != uvarintLen(i) {
		return Ctl{}, fmt.Errorf("%w: retry counter", ErrMalformed)
	}
	if len(rest) != n {
		return Ctl{}, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(rest)-n)
	}
	return Ctl{Rho: rho, Tau: tau, I: i}, nil
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func parseBytes(buf []byte) ([]byte, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 || k != uvarintLen(n) || n > maxMessageLen {
		// Reject unparsable, non-minimal and oversized length prefixes so
		// every packet value has exactly one encoding.
		return nil, nil, fmt.Errorf("%w: byte field length", ErrMalformed)
	}
	buf = buf[k:]
	if uint64(len(buf)) < n {
		return nil, nil, fmt.Errorf("%w: short byte field", ErrMalformed)
	}
	return buf[:n], buf[n:], nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
