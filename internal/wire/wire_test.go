package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ghm/internal/bitstr"
)

func TestDataRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		give Data
	}{
		{name: "empty", give: Data{}},
		{name: "basic", give: Data{
			Msg: []byte("hello"),
			Rho: bitstr.MustBinary("10110"),
			Tau: bitstr.MustBinary("111000111"),
		}},
		{name: "empty msg", give: Data{Rho: bitstr.MustBinary("1"), Tau: bitstr.MustBinary("0")}},
		{name: "binary msg", give: Data{
			Msg: []byte{0, 1, 2, 0xFF, 0x80},
			Rho: bitstr.Zero(25),
			Tau: bitstr.One(),
		}},
		{name: "large", give: Data{
			Msg: bytes.Repeat([]byte{0xAB}, 4096),
			Rho: bitstr.Zero(300),
			Tau: bitstr.Zero(513),
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			enc := tt.give.Encode()
			if k, err := Sniff(enc); err != nil || k != KindData {
				t.Fatalf("Sniff = %v, %v; want KindData", k, err)
			}
			got, err := DecodeData(enc)
			if err != nil {
				t.Fatalf("DecodeData: %v", err)
			}
			if !bytes.Equal(got.Msg, tt.give.Msg) {
				t.Errorf("Msg = %q, want %q", got.Msg, tt.give.Msg)
			}
			if !got.Rho.Equal(tt.give.Rho) || !got.Tau.Equal(tt.give.Tau) {
				t.Errorf("Rho/Tau mismatch: %v/%v", got.Rho, got.Tau)
			}
		})
	}
}

func TestCtlRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		give Ctl
	}{
		{name: "zero", give: Ctl{}},
		{name: "basic", give: Ctl{
			Rho: bitstr.MustBinary("101"),
			Tau: bitstr.MustBinary("0110"),
			I:   42,
		}},
		{name: "big counter", give: Ctl{Rho: bitstr.One(), Tau: bitstr.One(), I: 1 << 62}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			enc := tt.give.Encode()
			if k, err := Sniff(enc); err != nil || k != KindCtl {
				t.Fatalf("Sniff = %v, %v; want KindCtl", k, err)
			}
			got, err := DecodeCtl(enc)
			if err != nil {
				t.Fatalf("DecodeCtl: %v", err)
			}
			if !got.Rho.Equal(tt.give.Rho) || !got.Tau.Equal(tt.give.Tau) || got.I != tt.give.I {
				t.Errorf("got %+v, want %+v", got, tt.give)
			}
		})
	}
}

func TestCrossKindDecodeFails(t *testing.T) {
	data := Data{Msg: []byte("m"), Rho: bitstr.One(), Tau: bitstr.One()}.Encode()
	ctl := Ctl{Rho: bitstr.One(), Tau: bitstr.One(), I: 1}.Encode()
	if _, err := DecodeCtl(data); err == nil {
		t.Error("DecodeCtl accepted a DATA packet")
	}
	if _, err := DecodeData(ctl); err == nil {
		t.Error("DecodeData accepted a CTL packet")
	}
}

func TestDecodeMalformed(t *testing.T) {
	valid := Data{Msg: []byte("hello"), Rho: bitstr.MustBinary("10110"), Tau: bitstr.One()}.Encode()
	tests := []struct {
		name string
		give []byte
	}{
		{name: "empty", give: nil},
		{name: "unknown kind", give: []byte{9, 1, 2, 3}},
		{name: "kind only", give: []byte{byte(KindData)}},
		{name: "truncated", give: valid[:len(valid)-1]},
		{name: "trailing garbage", give: append(append([]byte{}, valid...), 0x00)},
		{name: "huge msg length", give: []byte{byte(KindData), 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeData(tt.give); !errors.Is(err, ErrMalformed) {
				t.Errorf("DecodeData(%x) err = %v, want ErrMalformed", tt.give, err)
			}
		})
	}
}

func TestCtlMalformed(t *testing.T) {
	valid := Ctl{Rho: bitstr.MustBinary("101"), Tau: bitstr.One(), I: 7}.Encode()
	tests := []struct {
		name string
		give []byte
	}{
		{name: "empty", give: nil},
		{name: "kind only", give: []byte{byte(KindCtl)}},
		{name: "truncated", give: valid[:len(valid)-1]},
		{name: "trailing garbage", give: append(append([]byte{}, valid...), 0x01)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeCtl(tt.give); !errors.Is(err, ErrMalformed) {
				t.Errorf("DecodeCtl(%x) err = %v, want ErrMalformed", tt.give, err)
			}
		})
	}
}

// TestDecodeNeverPanics throws random bytes at both decoders.
func TestDecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, r.Intn(64))
		for j := range buf {
			buf[j] = byte(r.Intn(256))
		}
		if r.Intn(2) == 0 && len(buf) > 0 {
			buf[0] = byte(KindData)
		}
		DecodeData(buf)
		DecodeCtl(buf)
		Sniff(buf)
	}
}

func TestQuickDataRoundTrip(t *testing.T) {
	f := func(msg []byte, seed int64, nRho, nTau uint8) bool {
		src := bitstr.NewMathSource(rand.New(rand.NewSource(seed)))
		d := Data{Msg: msg, Rho: src.Draw(int(nRho)), Tau: src.Draw(int(nTau))}
		got, err := DecodeData(d.Encode())
		return err == nil && bytes.Equal(got.Msg, msg) &&
			got.Rho.Equal(d.Rho) && got.Tau.Equal(d.Tau)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCtlRoundTrip(t *testing.T) {
	f := func(i uint64, seed int64, nRho, nTau uint8) bool {
		src := bitstr.NewMathSource(rand.New(rand.NewSource(seed)))
		c := Ctl{Rho: src.Draw(int(nRho)), Tau: src.Draw(int(nTau)), I: i}
		got, err := DecodeCtl(c.Encode())
		return err == nil && got.I == i && got.Rho.Equal(c.Rho) && got.Tau.Equal(c.Tau)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestObliviousLengths checks the property the security analysis relies on:
// packets carrying same-shape fields have identical encoded length, so the
// oblivious adversary cannot distinguish them.
func TestObliviousLengths(t *testing.T) {
	srcA := bitstr.NewMathSource(rand.New(rand.NewSource(1)))
	srcB := bitstr.NewMathSource(rand.New(rand.NewSource(2)))
	a := Data{Msg: []byte("xx"), Rho: srcA.Draw(25), Tau: srcA.Draw(25)}.Encode()
	b := Data{Msg: []byte("yy"), Rho: srcB.Draw(25), Tau: srcB.Draw(25)}.Encode()
	if len(a) != len(b) {
		t.Errorf("same-shape DATA packets differ in length: %d vs %d", len(a), len(b))
	}
	ca := Ctl{Rho: srcA.Draw(30), Tau: srcA.Draw(25), I: 9}.Encode()
	cb := Ctl{Rho: srcB.Draw(30), Tau: srcB.Draw(25), I: 5}.Encode()
	if len(ca) != len(cb) {
		t.Errorf("same-shape CTL packets differ in length: %d vs %d", len(ca), len(cb))
	}
}
