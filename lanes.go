package ghm

import (
	"context"
	"fmt"

	"ghm/internal/mux"
	"ghm/internal/netlink"
)

// MaxLanes is the largest lane count accepted by NewMuxSender and
// NewMuxReceiver.
const MaxLanes = mux.MaxLanes

// MuxSender pipelines messages over one link by running several protocol
// sessions ("lanes") side by side. The single-session protocol is
// stop-and-wait — one confirmed message per link round trip; with N lanes,
// up to N Send calls proceed concurrently, each with the full per-message
// guarantees, and the receiving side restores global send order.
//
// This is the conservative take on the paper's "modify the protocol for
// better efficiency" future-work note: throughput scales with lanes while
// the verified state machines stay untouched.
type MuxSender struct {
	m *mux.Sender
}

// NewMuxSender starts `lanes` transmitter sessions over conn. Both sides
// must use the same lane count. WithWindow deepens every lane: up to
// lanes×window messages in flight on one link.
func NewMuxSender(conn PacketConn, lanes int, opts ...Option) (*MuxSender, error) {
	o := applyOptions(opts)
	m, err := mux.NewSenderWindow(conn, lanes, o.windowDepth(), o.params())
	if err != nil {
		return nil, fmt.Errorf("ghm: %w", err)
	}
	return &MuxSender{m: m}, nil
}

// Send transfers msg with the next global sequence number and blocks until
// its lane confirms delivery. Run up to `lanes` Sends concurrently for
// pipelining. If a Send ultimately fails, the ordered stream has a hole
// and the receiving side will wait at it — treat that as fatal to the
// stream.
func (s *MuxSender) Send(ctx context.Context, msg []byte) error {
	return s.m.Send(ctx, msg)
}

// Close stops all lanes and the shared link pump.
func (s *MuxSender) Close() error { return s.m.Close() }

// MuxReceiver is the receiving side of a lane-multiplexed session.
type MuxReceiver struct {
	m *mux.Receiver
}

// NewMuxReceiver starts `lanes` receiver sessions over conn. Lane count
// and WithWindow depth must match the sender's.
func NewMuxReceiver(conn PacketConn, lanes int, opts ...Option) (*MuxReceiver, error) {
	o := applyOptions(opts)
	m, err := mux.NewReceiverWindow(conn, lanes, o.windowDepth(), netlink.ReceiverConfig{
		Params:          o.params(),
		RetryInterval:   o.retryInterval,
		RetryBackoffMax: o.retryBackoff,
	})
	if err != nil {
		return nil, fmt.Errorf("ghm: %w", err)
	}
	return &MuxReceiver{m: m}, nil
}

// Recv blocks for the next message in global send order.
func (r *MuxReceiver) Recv(ctx context.Context) ([]byte, error) {
	return r.m.Recv(ctx)
}

// Close stops all lanes and the resequencer.
func (r *MuxReceiver) Close() error { return r.m.Close() }
