package ghm_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ghm"
)

func muxPair(t *testing.T, lanes int, f ghm.PipeFaults) (*ghm.MuxSender, *ghm.MuxReceiver) {
	t.Helper()
	left, right := ghm.Pipe(f)
	s, err := ghm.NewMuxSender(left, lanes, ghm.WithRetryInterval(300*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	r, err := ghm.NewMuxReceiver(right, lanes, ghm.WithRetryInterval(300*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		r.Close()
	})
	return s, r
}

func TestMuxPublicAPI(t *testing.T) {
	const lanes, n = 4, 32
	s, r := muxPair(t, lanes, ghm.PipeFaults{Loss: 0.2, DupProb: 0.2, Seed: 41})
	ctx := testCtx(t)

	recvDone := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			m, err := r.Recv(ctx)
			if err != nil {
				recvDone <- err
				return
			}
			if len(m) == 0 {
				recvDone <- fmt.Errorf("empty message at %d", i)
				return
			}
		}
		recvDone <- nil
	}()

	var wg sync.WaitGroup
	sem := make(chan struct{}, lanes)
	for i := 0; i < n; i++ {
		i := i
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := s.Send(ctx, []byte(fmt.Sprintf("mux-%02d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	if err := <-recvDone; err != nil {
		t.Fatal(err)
	}
}

func TestMuxSingleProducerKeepsOrder(t *testing.T) {
	// One producer goroutine: global order must equal call order even
	// though lanes complete independently.
	s, r := muxPair(t, 3, ghm.PipeFaults{ReorderProb: 0.4, Seed: 42})
	ctx := testCtx(t)
	const n = 20
	recvDone := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			m, err := r.Recv(ctx)
			if err != nil {
				recvDone <- err
				return
			}
			if want := fmt.Sprintf("o-%02d", i); string(m) != want {
				recvDone <- fmt.Errorf("position %d: got %q want %q", i, m, want)
				return
			}
		}
		recvDone <- nil
	}()
	for i := 0; i < n; i++ {
		if err := s.Send(ctx, []byte(fmt.Sprintf("o-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-recvDone; err != nil {
		t.Fatal(err)
	}
}

func TestMuxValidation(t *testing.T) {
	left, right := ghm.Pipe(ghm.PipeFaults{Seed: 43})
	defer left.Close()
	if _, err := ghm.NewMuxSender(left, 0); err == nil {
		t.Error("0 lanes accepted")
	}
	if _, err := ghm.NewMuxReceiver(right, ghm.MaxLanes+1); err == nil {
		t.Error("too many lanes accepted")
	}
	if _, err := ghm.NewMuxSender(left, 2, ghm.WithEpsilon(3)); err == nil {
		t.Error("bad epsilon accepted")
	}
}
