package ghm

import (
	"context"
	"fmt"
	"time"

	"ghm/internal/relay"
)

// Link names one undirected edge of a relay topology by its two node ids.
type Link struct {
	A, B int
}

// Topology is a relay graph: Nodes numbered 0..Nodes-1 joined by
// undirected Links. Each link carries one supervised protocol session per
// direction once a Mesh realizes it.
type Topology struct {
	Nodes int
	Links []Link
}

// LinkConns is the pair of PacketConn halves realizing one topology
// link: A belongs to the node Link.A, B to Link.B. The mesh owns both
// and closes them with Mesh.Close. Pipe builds a matched pair; wrap the
// halves with Impair for chaos testing.
type LinkConns struct {
	A, B PacketConn
}

// MeshConfig parameterizes NewMesh. Topology, Links, Source and Dest are
// required; zero values elsewhere mean sensible defaults.
type MeshConfig struct {
	// Topology is the relay graph; Links realizes it, one conn pair per
	// topology link, in the same order.
	Topology Topology
	Links    []LinkConns
	// Source and Dest are the end-to-end endpoints: Submit injects at
	// Source, Delivered drains at Dest.
	Source, Dest int
	// Routes is how many link-disjoint routes to disperse over (default
	// 2, clamped to what the topology offers; at least one must exist).
	Routes int

	// Options configure every hop's stations (WithEpsilon, WithSeed,
	// WithRetryInterval, WithRetryBackoff), exactly as for NewSender and
	// NewReceiver. WithSeed additionally fixes hop-supervisor jitter, so
	// a seeded mesh is reproducible end to end.
	Options []Option

	// WatchdogWindow is each hop session's no-progress window (default
	// 250ms); hop health transitions drive route failover.
	WatchdogWindow time.Duration
	// AckTimeout is the end-to-end re-dispatch backstop: a payload whose
	// acknowledgment has not returned within it is re-sent, possibly over
	// another route (default 1s). The destination deduplicates, so the
	// backstop never causes a double delivery.
	AckTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per payload (0 = unlimited);
	// exhausting it is a sticky fatal error.
	MaxAttempts int
	// WALDir, when set, gives every directed hop a forwarding
	// write-ahead log so a crashed relay node replays the frames it had
	// accepted but not yet pushed onward.
	WALDir string
	// DeliveryBuffer is the Delivered channel capacity (default 256).
	DeliveryBuffer int
}

// MeshStats snapshots a Mesh's counters.
type MeshStats struct {
	Submitted     int   // payloads accepted at the source
	Acked         int   // payloads confirmed end-to-end
	Pending       int   // submitted but not yet acked
	Parked        int   // pending with no usable route right now
	Delivered     int64 // distinct payloads handed to the destination
	Hops          int64 // frames forwarded by intermediate nodes
	Reroutes      int64 // re-dispatches (failover + ack timeouts)
	DupSuppressed int64 // duplicates suppressed per hop and end-to-end
	NodeRestarts  int64 // relay-node incarnations rebuilt
	RoutesUsable  int   // routes currently fully healthy
	Routes        int   // link-disjoint routes the mesh dispersed over
}

// HopReport is one directed hop's live conformance report: the counts of
// protocol actions observed on that hop and of violations of the paper's
// Section 2.6 correctness conditions. All-zero violation counts mean the
// hop's execution so far provably conforms.
type HopReport struct {
	Sent, Delivered, OKs, CrashT, CrashR int
	// Causality, Order, Duplication and Replay count condition
	// violations; see the package documentation for their statements.
	Causality, Order, Duplication, Replay int
}

// Violations totals the report's condition violations.
func (r HopReport) Violations() int {
	return r.Causality + r.Order + r.Duplication + r.Replay
}

// Clean reports whether the hop's observed execution conforms.
func (r HopReport) Clean() bool { return r.Violations() == 0 }

// Mesh relays messages from a source node to a destination node across a
// network of unreliable links and crash-prone intermediate relay nodes.
// Every edge runs the paper's protocol under a self-healing supervised
// session per direction; the source disperses payloads over link-disjoint
// routes and fails them over when a route degrades; intermediate nodes
// forward hop by hop with per-hop deduplication; the destination
// deduplicates end to end and acknowledges back. The result is
// exactly-once, source-to-destination delivery that survives any faulty
// minority of links and whole relay-node crashes, per the paper's
// Theorems 7 and 8 composed over the multi-hop chain.
//
// Create with NewMesh; always Close.
type Mesh struct {
	m *relay.Mesh
}

// NewMesh validates the topology, computes the link-disjoint routes,
// starts every node's per-hop sessions and receivers, and starts the
// source's routing loop.
func NewMesh(cfg MeshConfig) (*Mesh, error) {
	o := applyOptions(cfg.Options)
	topo := relay.Topology{Nodes: cfg.Topology.Nodes}
	for _, l := range cfg.Topology.Links {
		topo.Links = append(topo.Links, relay.Link{A: l.A, B: l.B})
	}
	links := make([]relay.LinkConns, len(cfg.Links))
	for i, lc := range cfg.Links {
		links[i] = relay.LinkConns{A: lc.A, B: lc.B}
	}
	var seed int64
	if o.hasSeed {
		seed = o.seed + 1
	}
	m, err := relay.New(relay.Config{
		Topology:        topo,
		Links:           links,
		Source:          cfg.Source,
		Dest:            cfg.Dest,
		Routes:          cfg.Routes,
		Epsilon:         o.epsilon,
		RetryInterval:   o.retryInterval,
		RetryBackoffMax: o.retryBackoff,
		WatchdogWindow:  cfg.WatchdogWindow,
		AckTimeout:      cfg.AckTimeout,
		MaxAttempts:     cfg.MaxAttempts,
		WALDir:          cfg.WALDir,
		DeliveryBuffer:  cfg.DeliveryBuffer,
		Seed:            seed,
	})
	if err != nil {
		return nil, fmt.Errorf("ghm: %w", err)
	}
	return &Mesh{m: m}, nil
}

// Submit accepts a payload at the source for end-to-end delivery and
// returns its mesh id. The payload is dispatched immediately over a
// usable route, or parked until one recovers.
func (m *Mesh) Submit(payload []byte) (uint64, error) { return m.m.Submit(payload) }

// Delivered is the destination's higher layer: distinct payloads, each
// exactly once, in arrival order. Close closes the channel.
func (m *Mesh) Delivered() <-chan []byte { return m.m.Delivered() }

// Flush blocks until every submitted payload is acknowledged end-to-end,
// the mesh fails fatally, or ctx ends. Link faults, failovers and node
// crashes are not fatal: Flush rides through them.
func (m *Mesh) Flush(ctx context.Context) error { return m.m.Flush(ctx) }

// Err returns the mesh's sticky fatal error, if any (MaxAttempts
// exhausted).
func (m *Mesh) Err() error { return m.m.Err() }

// Routes returns the link-disjoint node paths the mesh disperses over.
func (m *Mesh) Routes() [][]int { return m.m.Routes() }

// StopNode crashes a relay node for fault injection: its sessions,
// receivers and in-memory forwarding state are torn down; the links stay
// up for the next incarnation. In-flight payloads routed through it fail
// over; with no surviving route they park until RestartNode.
func (m *Mesh) StopNode(id int) error { return m.m.StopNode(id) }

// RestartNode rebuilds a crashed relay node; with a WALDir its hop
// sessions replay the forwarding backlog the crash interrupted.
func (m *Mesh) RestartNode(id int) error { return m.m.RestartNode(id) }

// NodeUp reports whether node id is currently running.
func (m *Mesh) NodeUp(id int) bool { return m.m.NodeUp(id) }

// Stats snapshots the mesh's counters.
func (m *Mesh) Stats() MeshStats {
	st := m.m.Stats()
	return MeshStats{
		Submitted:     st.Submitted,
		Acked:         st.Acked,
		Pending:       st.Pending,
		Parked:        st.Parked,
		Delivered:     st.Delivered,
		Hops:          st.Hops,
		Reroutes:      st.Reroutes,
		DupSuppressed: st.DupSuppressed,
		NodeRestarts:  st.NodeRestarts,
		RoutesUsable:  st.RoutesUsable,
		Routes:        st.Routes,
	}
}

// HopReports returns every directed hop's live conformance report, keyed
// "from->to" (e.g. "0->1").
func (m *Mesh) HopReports() map[string]HopReport {
	in := m.m.HopReports()
	out := make(map[string]HopReport, len(in))
	for id, r := range in {
		out[id] = HopReport{
			Sent:        r.Sent,
			Delivered:   r.Delivered,
			OKs:         r.OKs,
			CrashT:      r.CrashT,
			CrashR:      r.CrashR,
			Causality:   r.Causality,
			Order:       r.Order,
			Duplication: r.Duplication,
			Replay:      r.Replay,
		}
	}
	return out
}

// Close stops the mesh: the router, every node, every link conn, and the
// Delivered channel.
func (m *Mesh) Close() error { return m.m.Close() }
