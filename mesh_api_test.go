package ghm_test

import (
	"fmt"
	"testing"
	"time"

	"ghm"
)

// diamondMesh builds a four-node diamond 0-1-3 / 0-2-3 over lossy pipes
// and returns the mesh plus a drain of its deliveries.
func diamondMesh(t *testing.T, mut func(*ghm.MeshConfig)) (*ghm.Mesh, func() []string) {
	t.Helper()
	topo := ghm.Topology{
		Nodes: 4,
		Links: []ghm.Link{{A: 0, B: 1}, {A: 1, B: 3}, {A: 0, B: 2}, {A: 2, B: 3}},
	}
	var links []ghm.LinkConns
	for i := range topo.Links {
		a, b := ghm.Pipe(ghm.PipeFaults{Loss: 0.15, ReorderProb: 0.1, Seed: int64(100 + i)})
		links = append(links, ghm.LinkConns{A: a, B: b})
	}
	cfg := ghm.MeshConfig{
		Topology: topo,
		Links:    links,
		Source:   0,
		Dest:     3,
		Routes:   2,
		Options:  []ghm.Option{ghm.WithSeed(7), ghm.WithRetryInterval(300 * time.Microsecond)},
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := ghm.NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })

	got := make(chan []string, 1)
	go func() {
		var all []string
		for p := range m.Delivered() {
			all = append(all, string(p))
		}
		got <- all
	}()
	return m, func() []string {
		m.Close()
		return <-got
	}
}

func TestMeshDeliversExactlyOnce(t *testing.T) {
	m, collect := diamondMesh(t, nil)
	if len(m.Routes()) != 2 {
		t.Fatalf("routes = %v, want 2 disjoint", m.Routes())
	}
	const n = 30
	for i := 0; i < n; i++ {
		if _, err := m.Submit([]byte(fmt.Sprintf("p-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(testCtx(t)); err != nil {
		t.Fatalf("flush: %v (stats %+v)", err, m.Stats())
	}
	st := m.Stats()
	if st.Submitted != n || st.Acked != n || st.Pending != 0 {
		t.Fatalf("stats: %+v", st)
	}

	seen := map[string]int{}
	for _, p := range collect() {
		seen[p]++
	}
	for i := 0; i < n; i++ {
		if c := seen[fmt.Sprintf("p-%02d", i)]; c != 1 {
			t.Errorf("payload %d delivered %d times", i, c)
		}
	}
	for id, rep := range m.HopReports() {
		if !rep.Clean() {
			t.Errorf("hop %s: %d violations (%+v)", id, rep.Violations(), rep)
		}
	}
}

func TestMeshSurvivesRelayNodeCrash(t *testing.T) {
	m, collect := diamondMesh(t, func(c *ghm.MeshConfig) {
		c.AckTimeout = 500 * time.Millisecond
		c.WALDir = t.TempDir()
	})
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := m.Submit([]byte(fmt.Sprintf("c-%02d", i))); err != nil {
			t.Fatal(err)
		}
		if i == 12 {
			if err := m.StopNode(1); err != nil {
				t.Fatal(err)
			}
			if m.NodeUp(1) {
				t.Fatal("node 1 still up after StopNode")
			}
		}
		if i == 25 {
			if err := m.RestartNode(1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.Flush(testCtx(t)); err != nil {
		t.Fatalf("flush: %v (stats %+v)", err, m.Stats())
	}
	if st := m.Stats(); st.NodeRestarts != 1 || st.Acked != n {
		t.Fatalf("stats: %+v", st)
	}

	seen := map[string]int{}
	for _, p := range collect() {
		seen[p]++
	}
	for i := 0; i < n; i++ {
		if c := seen[fmt.Sprintf("c-%02d", i)]; c != 1 {
			t.Errorf("payload %d delivered %d times", i, c)
		}
	}
}

func TestMeshConfigValidation(t *testing.T) {
	if _, err := ghm.NewMesh(ghm.MeshConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	a, b := ghm.Pipe(ghm.PipeFaults{})
	defer a.Close()
	defer b.Close()
	_, err := ghm.NewMesh(ghm.MeshConfig{
		Topology: ghm.Topology{Nodes: 2, Links: []ghm.Link{{A: 0, B: 1}}},
		Links:    []ghm.LinkConns{{A: a, B: b}},
		Source:   0, Dest: 0,
	})
	if err == nil {
		t.Error("source == dest accepted")
	}
}
