package ghm

import (
	"ghm/internal/metrics"
)

// MetricsSnapshot is a point-in-time export of the process-wide metrics
// registry: every counter, gauge and latency histogram the runtime layers
// maintain. See the README's Observability section for the exported
// metric names.
type MetricsSnapshot struct {
	// Counters are monotonic event counts (tx.*, rx.*, link.*, chaos.*).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges are instantaneous values (e.g. rx.retry_interval_ms).
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms summarize sample streams (e.g. tx.ok_latency_ms).
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// HistogramStats summarizes one histogram: count, mean, extrema and
// streaming p50/p95/p99 estimates (P² algorithm — no samples retained).
type HistogramStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Metrics snapshots the process-wide metrics registry. Every Sender,
// Receiver and impaired link in the process feeds it (stations created
// through this package always do); the tx.* and rx.* counter families
// stay cumulative across station crashes even though a crash erases the
// stations' own protocol memory.
func Metrics() MetricsSnapshot {
	s := metrics.Default().Snapshot()
	out := MetricsSnapshot{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: make(map[string]HistogramStats, len(s.Histograms)),
	}
	for k, h := range s.Histograms {
		out.Histograms[k] = HistogramStats{
			Count: h.Count, Mean: h.Mean, Min: h.Min, Max: h.Max,
			P50: h.P50, P95: h.P95, P99: h.P99,
		}
	}
	return out
}

// JSON renders the snapshot as indented JSON with stable key order.
func (s MetricsSnapshot) JSON() string {
	return metrics.Snapshot{
		Counters: s.Counters,
		Gauges:   s.Gauges,
		Histograms: func() map[string]metrics.HistogramValue {
			m := make(map[string]metrics.HistogramValue, len(s.Histograms))
			for k, h := range s.Histograms {
				m[k] = metrics.HistogramValue{
					Count: h.Count, Mean: h.Mean, Min: h.Min, Max: h.Max,
					P50: h.P50, P95: h.P95, P99: h.P99,
				}
			}
			return m
		}(),
	}.JSON()
}

// MetricsServer is a running metrics HTTP endpoint; see ServeMetrics.
type MetricsServer struct {
	srv *metrics.Server
}

// Addr returns the endpoint's bound address (useful with a ":0" port).
func (s *MetricsServer) Addr() string { return s.srv.Addr() }

// Close shuts the endpoint down.
func (s *MetricsServer) Close() error { return s.srv.Close() }

// ServeMetrics starts an HTTP endpoint on addr (e.g. "localhost:6060")
// exposing the process-wide registry as JSON at /metrics, the standard
// expvar surface at /debug/vars, and the pprof profiles under
// /debug/pprof/. The cmd/ghmsoak and cmd/ghmbench -metrics-addr flags
// wrap exactly this.
func ServeMetrics(addr string) (*MetricsServer, error) {
	srv, err := metrics.Serve(addr, metrics.Default())
	if err != nil {
		return nil, err
	}
	return &MetricsServer{srv: srv}, nil
}
