package ghm_test

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"ghm"
)

// TestMetricsObservesTraffic checks that stations created through the
// public API feed the process-wide registry ghm.Metrics() exports.
func TestMetricsObservesTraffic(t *testing.T) {
	before := ghm.Metrics()
	left, right := ghm.Pipe(ghm.PipeFaults{Seed: 77})
	s, err := ghm.NewSender(left)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := ghm.NewReceiver(right)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx := testCtx(t)
	const n = 5
	for i := 0; i < n; i++ {
		if err := s.Send(ctx, []byte("observed")); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}

	after := ghm.Metrics()
	if got := after.Counters["tx.oks"] - before.Counters["tx.oks"]; got != n {
		t.Errorf("tx.oks grew by %d, want %d", got, n)
	}
	if got := after.Counters["rx.delivered"] - before.Counters["rx.delivered"]; got != n {
		t.Errorf("rx.delivered grew by %d, want %d", got, n)
	}
	if after.Histograms["tx.ok_latency_ms"].Count < n {
		t.Errorf("ok latency histogram count = %d, want >= %d",
			after.Histograms["tx.ok_latency_ms"].Count, n)
	}
	var parsed ghm.MetricsSnapshot
	if err := json.Unmarshal([]byte(after.JSON()), &parsed); err != nil {
		t.Errorf("snapshot JSON does not parse: %v", err)
	}
}

func TestServeMetrics(t *testing.T) {
	srv, err := ghm.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics = %d %q", resp.StatusCode, body)
	}
	var snap ghm.MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Errorf("/metrics body is not a snapshot: %v", err)
	}
}
