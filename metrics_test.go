package ghm_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"ghm"
)

// TestMetricsObservesTraffic checks that stations created through the
// public API feed the process-wide registry ghm.Metrics() exports.
func TestMetricsObservesTraffic(t *testing.T) {
	before := ghm.Metrics()
	left, right := ghm.Pipe(ghm.PipeFaults{Seed: 77})
	s, err := ghm.NewSender(left)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := ghm.NewReceiver(right)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx := testCtx(t)
	const n = 5
	for i := 0; i < n; i++ {
		if err := s.Send(ctx, []byte("observed")); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}

	after := ghm.Metrics()
	if got := after.Counters["tx.oks"] - before.Counters["tx.oks"]; got != n {
		t.Errorf("tx.oks grew by %d, want %d", got, n)
	}
	if got := after.Counters["rx.delivered"] - before.Counters["rx.delivered"]; got != n {
		t.Errorf("rx.delivered grew by %d, want %d", got, n)
	}
	if after.Histograms["tx.ok_latency_ms"].Count < n {
		t.Errorf("ok latency histogram count = %d, want >= %d",
			after.Histograms["tx.ok_latency_ms"].Count, n)
	}
	var parsed ghm.MetricsSnapshot
	if err := json.Unmarshal([]byte(after.JSON()), &parsed); err != nil {
		t.Errorf("snapshot JSON does not parse: %v", err)
	}
}

// TestSendAccountingConsistency pins the station's send bookkeeping
// identity: every admitted transfer ends as exactly one of OK or
// abandoned (tx.send_msgs == tx.oks + tx.abandoned), and every OK — the
// handler fast path and a late OK drained after a lost cancellation race
// alike — lands one observation in the confirm-latency histogram.
func TestSendAccountingConsistency(t *testing.T) {
	before := ghm.Metrics()

	// Confirmed transfers.
	left, right := ghm.Pipe(ghm.PipeFaults{Seed: 78})
	s, err := ghm.NewSender(left)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := ghm.NewReceiver(right)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := testCtx(t)
	const n = 4
	for i := 0; i < n; i++ {
		if err := s.Send(ctx, []byte("accounted")); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// An abandoned transfer: no receiver ever answers, the context ends,
	// the station crashes itself.
	lone, other := ghm.Pipe(ghm.PipeFaults{Seed: 79})
	defer other.Close()
	s2, err := ghm.NewSender(lone)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cctx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if err := s2.Send(cctx, []byte("doomed")); err == nil {
		t.Fatal("Send with no receiver succeeded")
	}

	after := ghm.Metrics()
	sends := after.Counters["tx.send_msgs"] - before.Counters["tx.send_msgs"]
	oks := after.Counters["tx.oks"] - before.Counters["tx.oks"]
	abandoned := after.Counters["tx.abandoned"] - before.Counters["tx.abandoned"]
	if sends != oks+abandoned {
		t.Errorf("tx.send_msgs grew %d, tx.oks %d + tx.abandoned %d = %d — an admission leaked out of the books",
			sends, oks, abandoned, oks+abandoned)
	}
	if sends != n+1 || oks != n || abandoned != 1 {
		t.Errorf("deltas send=%d oks=%d abandoned=%d, want %d/%d/1", sends, oks, abandoned, n+1, n)
	}
	histGrew := after.Histograms["tx.ok_latency_ms"].Count - before.Histograms["tx.ok_latency_ms"].Count
	if histGrew != oks {
		t.Errorf("ok latency histogram grew %d, want one observation per OK (%d)", histGrew, oks)
	}
}

func TestServeMetrics(t *testing.T) {
	srv, err := ghm.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics = %d %q", resp.StatusCode, body)
	}
	var snap ghm.MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Errorf("/metrics body is not a snapshot: %v", err)
	}
}
