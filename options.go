package ghm

import (
	"math/rand"
	"time"

	"ghm/internal/bitstr"
	"ghm/internal/core"
)

// Option configures a Sender or Receiver.
type Option interface {
	apply(*options)
}

type options struct {
	epsilon       float64
	retryInterval time.Duration
	seed          int64
	hasSeed       bool
	size          func(t int) int
	bound         func(t int) int
}

func applyOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt.apply(&o)
	}
	return o
}

func (o options) params() core.Params {
	p := core.Params{
		Epsilon: o.epsilon,
		Size:    o.size,
		Bound:   o.bound,
	}
	if o.hasSeed {
		p.Source = bitstr.NewMathSource(rand.New(rand.NewSource(o.seed)))
	}
	return p
}

type epsilonOption float64

func (e epsilonOption) apply(o *options) { o.epsilon = float64(e) }

// WithEpsilon sets the permitted error probability per message
// (0 < eps < 1). Smaller epsilon means longer random strings in every
// packet; the default 2^-20 costs about 25 bits per string.
func WithEpsilon(eps float64) Option { return epsilonOption(eps) }

type retryOption time.Duration

// WithRetryInterval paces the receiving station's retry timer (default
// 2ms). Shorter intervals recover from loss faster at the cost of idle
// control traffic. Senders ignore this option: the protocol's transmitter
// is purely reactive.
func WithRetryInterval(d time.Duration) Option { return retryOption(d) }

func (r retryOption) apply(o *options) { o.retryInterval = time.Duration(r) }

type seedOption int64

// WithSeed makes the station's random strings deterministic, for tests and
// reproducible experiments. Production stations should omit it and use the
// default crypto-quality source: the protocol's guarantees against
// malicious schedulers assume the adversary cannot predict the strings.
func WithSeed(seed int64) Option { return seedOption(seed) }

func (s seedOption) apply(o *options) {
	o.seed = int64(s)
	o.hasSeed = true
}

type scheduleOption struct {
	size  func(t int) int
	bound func(t int) int
}

// WithSchedule overrides the paper's size/bound schedule: size(t) is the
// number of fresh bits drawn at extension level t, bound(t) the number of
// same-length mismatches tolerated before extending. The paper's
// conclusions pose choosing these well as an open problem; see experiment
// E8 in EXPERIMENTS.md for measured tradeoffs. Either function may be nil
// to keep its default.
func WithSchedule(size, bound func(t int) int) Option {
	return scheduleOption{size: size, bound: bound}
}

func (s scheduleOption) apply(o *options) {
	if s.size != nil {
		o.size = s.size
	}
	if s.bound != nil {
		o.bound = s.bound
	}
}
