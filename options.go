package ghm

import (
	//lint:allow cryptorand WithSeed is the documented deterministic-mode escape hatch; see its doc comment
	"math/rand"
	"time"

	"ghm/internal/bitstr"
	"ghm/internal/core"
)

// Option configures a Sender or Receiver.
type Option interface {
	apply(*options)
}

type options struct {
	epsilon       float64
	retryInterval time.Duration
	retryBackoff  time.Duration
	seed          int64
	hasSeed       bool
	size          func(t int) int
	bound         func(t int) int
	tap           func(Event)
	window        int
	epoch         uint64
}

// windowDepth resolves the window option: 0 (unset) means depth 1; any
// other value is passed through for the constructors to validate.
func (o options) windowDepth() int {
	if o.window == 0 {
		return 1
	}
	return o.window
}

func applyOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt.apply(&o)
	}
	return o
}

func (o options) params() core.Params {
	p := core.Params{
		Epsilon: o.epsilon,
		Size:    o.size,
		Bound:   o.bound,
	}
	if o.hasSeed {
		//lint:allow cryptorand WithSeed deliberately trades the ε-bounds for reproducibility; its doc says tests only
		p.Source = bitstr.NewMathSource(rand.New(rand.NewSource(o.seed)))
	}
	return p
}

type epsilonOption float64

func (e epsilonOption) apply(o *options) { o.epsilon = float64(e) }

// WithEpsilon sets the permitted error probability per message
// (0 < eps < 1). Smaller epsilon means longer random strings in every
// packet; the default 2^-20 costs about 25 bits per string.
func WithEpsilon(eps float64) Option { return epsilonOption(eps) }

type retryOption time.Duration

// WithRetryInterval paces the receiving station's retry timer (default
// 2ms). Shorter intervals recover from loss faster at the cost of idle
// control traffic. Senders ignore this option: the protocol's transmitter
// is purely reactive.
func WithRetryInterval(d time.Duration) Option { return retryOption(d) }

func (r retryOption) apply(o *options) { o.retryInterval = time.Duration(r) }

type retryBackoffOption time.Duration

// WithRetryBackoff enables the receiving station's adaptive retry pacing:
// while the link is silent (idle, or blacked out) the retry interval
// doubles per tick up to max, and snaps back to the WithRetryInterval
// base on any packet arrival. Idle links stop burning control traffic
// without giving up the "infinitely often" retries the protocol's
// liveness needs. Senders ignore this option.
func WithRetryBackoff(max time.Duration) Option { return retryBackoffOption(max) }

func (r retryBackoffOption) apply(o *options) { o.retryBackoff = time.Duration(r) }

type tapOption func(Event)

// WithTap registers a callback observing the station's lifecycle actions
// (send_msg, OK, receive_msg, crashes) at the moment they commit. The
// callback runs on the station's internal goroutines with its lock held:
// it must be fast and must not call back into the station. Taps exist for
// chaos testing, conformance checking and monitoring.
func WithTap(fn func(Event)) Option { return tapOption(fn) }

func (t tapOption) apply(o *options) { o.tap = t }

type seedOption int64

// WithSeed makes the station's random strings deterministic, for tests and
// reproducible experiments. Production stations should omit it and use the
// default crypto-quality source: the protocol's guarantees against
// malicious schedulers assume the adversary cannot predict the strings.
func WithSeed(seed int64) Option { return seedOption(seed) }

func (s seedOption) apply(o *options) {
	o.seed = int64(s)
	o.hasSeed = true
}

// MaxWindow is the largest sliding-window depth WithWindow accepts.
const MaxWindow = core.MaxWindow

type windowOption int

// WithWindow sets the station's sliding-window depth k (1..MaxWindow,
// default 1): up to k Send calls proceed concurrently on one station,
// each confirmed by its own slot of the protocol, and the receiving
// station releases deliveries to Recv in admission order, exactly once.
// Both stations must use the same depth. The stop-and-wait protocol
// confirms one message per link round trip; a window of k confirms up to
// k per round trip on latency-bound links.
//
// One crash model covers the whole window: cancelling any in-flight Send
// (or Crash) erases the entire station, failing every concurrent Send
// with ErrCrashed. Every wiped payload must be resubmitted byte-identical
// or the receiver's in-order release stalls at the hole — NewSession does
// this automatically; manual callers own that contract, exactly as with
// lane multiplexing.
//
// A windowed Receiver outliving its Sender needs WithEpoch on each
// rebuilt Sender: a fresh Sender restarts its internal sequence numbers,
// and without a higher epoch the receiver's in-order release treats the
// restarted stream as a replay and silently drops it.
func WithWindow(k int) Option { return windowOption(k) }

func (w windowOption) apply(o *options) { o.window = int(w) }

type epochOption uint64

// WithEpoch identifies a windowed Sender's incarnation (default 0) to a
// windowed Receiver that outlives it. Each Sender restarts its internal
// admission sequence numbers at zero; the receiver distinguishes a
// rebuilt sender from a replay of the old one only by the epoch, adopting
// the highest it sees and resetting its release cursor for it. Pass a
// strictly higher epoch each time a new Sender is attached to a
// long-lived windowed Receiver — reusing an epoch makes the receiver
// silently drop the new stream as duplicates while Send reports success.
// A pair built and torn down together can leave it 0. Raising the epoch
// abandons the previous incarnation's dedup state, so delivery across a
// rebuild is at-least-once. Receivers and single-slot (window 1) stations
// ignore this option; NewSession manages epochs automatically.
func WithEpoch(epoch uint64) Option { return epochOption(epoch) }

func (e epochOption) apply(o *options) { o.epoch = uint64(e) }

type scheduleOption struct {
	size  func(t int) int
	bound func(t int) int
}

// WithSchedule overrides the paper's size/bound schedule: size(t) is the
// number of fresh bits drawn at extension level t, bound(t) the number of
// same-length mismatches tolerated before extending. The paper's
// conclusions pose choosing these well as an open problem; see experiment
// E8 in EXPERIMENTS.md for measured tradeoffs. Either function may be nil
// to keep its default.
func WithSchedule(size, bound func(t int) int) Option {
	return scheduleOption{size: size, bound: bound}
}

func (s scheduleOption) apply(o *options) {
	if s.size != nil {
		o.size = s.size
	}
	if s.bound != nil {
		o.bound = s.bound
	}
}
