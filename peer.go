package ghm

import (
	"context"
	"fmt"

	"ghm/internal/netlink"
)

// Role distinguishes the two ends of a full-duplex Peer link. The two
// ends must pick different roles (which end is which does not matter).
type Role int

const (
	// RoleA is one end of the link.
	RoleA Role = iota
	// RoleB is the other end.
	RoleB
)

// Peer is a full-duplex reliable session: both ends Send and Recv over a
// single PacketConn, each direction independently carrying the protocol's
// ordered, exactly-once, crash-resilient guarantees.
type Peer struct {
	p *netlink.Peer
}

// NewPeer starts a full-duplex session on conn. The remote end must call
// NewPeer on its endpoint with the other Role.
func NewPeer(conn PacketConn, role Role, opts ...Option) (*Peer, error) {
	o := applyOptions(opts)
	p, err := netlink.NewPeer(conn, netlink.PeerRole(role), o.params(), netlink.ReceiverConfig{
		RetryInterval:   o.retryInterval,
		RetryBackoffMax: o.retryBackoff,
	})
	if err != nil {
		return nil, fmt.Errorf("ghm: %w", err)
	}
	return &Peer{p: p}, nil
}

// Send transfers msg to the other end and blocks until the protocol
// confirms delivery.
func (p *Peer) Send(ctx context.Context, msg []byte) error {
	return p.p.Send(ctx, msg)
}

// Recv blocks for the next message from the other end.
func (p *Peer) Recv(ctx context.Context) ([]byte, error) {
	return p.p.Recv(ctx)
}

// Crash simulates a host crash of this end: both directions' protocol
// memory is erased; a pending Send fails with ErrCrashed.
func (p *Peer) Crash() { p.p.Crash() }

// Stats returns both directions' protocol counters.
func (p *Peer) Stats() (send SenderStats, recv ReceiverStats) {
	st := p.p.SendStats()
	sr := p.p.RecvStats()
	return SenderStats{
			PacketsSent:   st.PacketsSent,
			Completed:     st.OKs,
			ErrorsCounted: st.ErrorsCounted,
			Extensions:    st.Extensions,
			Ignored:       st.Ignored,
		}, ReceiverStats{
			PacketsSent:   sr.PacketsSent,
			Delivered:     sr.Delivered,
			ErrorsCounted: sr.ErrorsCounted,
			Extensions:    sr.Extensions,
			Ignored:       sr.Ignored,
		}
}

// Close stops both directions and waits for their goroutines.
func (p *Peer) Close() error { return p.p.Close() }
