package ghm_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"ghm"
)

func peerPair(t *testing.T, f ghm.PipeFaults) (*ghm.Peer, *ghm.Peer) {
	t.Helper()
	left, right := ghm.Pipe(f)
	a, err := ghm.NewPeer(left, ghm.RoleA, ghm.WithRetryInterval(300*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ghm.NewPeer(right, ghm.RoleB, ghm.WithRetryInterval(300*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func TestPeerBothDirections(t *testing.T) {
	a, b := peerPair(t, ghm.PipeFaults{Loss: 0.25, DupProb: 0.2, Seed: 51})
	ctx := testCtx(t)

	// Full-duplex conversation: requests one way, replies the other,
	// concurrently.
	const n = 15
	errc := make(chan error, 2)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(ctx, []byte(fmt.Sprintf("req-%02d", i))); err != nil {
				errc <- fmt.Errorf("a send: %w", err)
				return
			}
		}
		errc <- nil
	}()
	go func() {
		for i := 0; i < n; i++ {
			got, err := b.Recv(ctx)
			if err != nil {
				errc <- fmt.Errorf("b recv: %w", err)
				return
			}
			if err := b.Send(ctx, append([]byte("ack:"), got...)); err != nil {
				errc <- fmt.Errorf("b send: %w", err)
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		got, err := a.Recv(ctx)
		if err != nil {
			t.Fatalf("a recv %d: %v", i, err)
		}
		want := fmt.Sprintf("ack:req-%02d", i)
		if string(got) != want {
			t.Fatalf("a recv %d = %q, want %q", i, got, want)
		}
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	sendStats, recvStats := a.Stats()
	if sendStats.Completed != n {
		t.Errorf("a send completed = %d, want %d", sendStats.Completed, n)
	}
	if recvStats.Delivered != n {
		t.Errorf("a recv delivered = %d, want %d", recvStats.Delivered, n)
	}
}

func TestPeerCrashRecovers(t *testing.T) {
	a, b := peerPair(t, ghm.PipeFaults{Seed: 52})
	ctx := testCtx(t)
	if err := a.Send(ctx, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	a.Crash()
	if err := a.Send(ctx, []byte("two")); err != nil {
		t.Fatalf("send after crash: %v", err)
	}
	got, err := b.Recv(ctx)
	if err != nil || !bytes.Equal(got, []byte("two")) {
		t.Fatalf("recv = %q, %v", got, err)
	}
	// And the reverse direction still works after the crash.
	if err := b.Send(ctx, []byte("back")); err != nil {
		t.Fatal(err)
	}
	got, err = a.Recv(ctx)
	if err != nil || !bytes.Equal(got, []byte("back")) {
		t.Fatalf("reverse recv = %q, %v", got, err)
	}
}

func TestPeerRoleValidation(t *testing.T) {
	left, _ := ghm.Pipe(ghm.PipeFaults{Seed: 53})
	defer left.Close()
	if _, err := ghm.NewPeer(left, ghm.Role(7)); err == nil {
		t.Error("invalid role accepted")
	}
	if _, err := ghm.NewPeer(left, ghm.RoleA, ghm.WithEpsilon(9)); err == nil {
		t.Error("invalid epsilon accepted")
	}
}

func TestPeerClose(t *testing.T) {
	a, b := peerPair(t, ghm.PipeFaults{Seed: 54})
	a.Close()
	a.Close() // idempotent
	ctx := testCtx(t)
	if err := a.Send(ctx, []byte("x")); err == nil {
		t.Error("send on closed peer succeeded")
	}
	if _, err := a.Recv(ctx); !errors.Is(err, ghm.ErrClosed) {
		t.Errorf("recv on closed peer = %v", err)
	}
	_ = b
}

func TestPeerStreamsCompose(t *testing.T) {
	// The byte-stream adapters work over a peer direction too: wire a
	// Sender-shaped and Receiver-shaped view via the peer's methods.
	a, b := peerPair(t, ghm.PipeFaults{Loss: 0.2, Seed: 55})
	ctx := testCtx(t)
	payload := bytes.Repeat([]byte("stream-data "), 300)

	errc := make(chan error, 1)
	go func() {
		// Chunk manually through the peer (StreamWriter requires a
		// *Sender; peers expose the same Send contract).
		const chunk = 512
		for off := 0; off < len(payload); off += chunk {
			end := off + chunk
			if end > len(payload) {
				end = len(payload)
			}
			if err := a.Send(ctx, payload[off:end]); err != nil {
				errc <- err
				return
			}
		}
		errc <- a.Send(ctx, []byte{}) // empty frame = our end marker
	}()

	var got []byte
	for {
		m, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(m) == 0 {
			break
		}
		got = append(got, m...)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("stream corrupted: %d bytes in, %d out", len(payload), len(got))
	}
}
