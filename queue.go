package ghm

import (
	"context"
	"errors"
	"fmt"

	"ghm/internal/outbox"
)

// Queue is the buffering higher layer the protocol model assumes
// (Axiom 1: "messages are buffered instead in the higher layer"):
// applications enqueue messages at will, and the queue transfers them in
// order through a Sender, automatically resubmitting messages that a
// station crash wiped mid-flight.
//
// Semantics: while no station crashes, delivery is exactly-once (the
// protocol's own guarantee). Across sender crashes it is at-least-once —
// a wiped message may or may not have reached the receiver before the
// crash, and the queue resubmits it; deduplicate by an application-level
// id (the queue's Enqueue id works) if that matters.
//
// With a WAL path, the backlog additionally survives process restarts:
// reopen the queue with the same path and the unconfirmed suffix is
// retransferred.
type Queue struct {
	q *outbox.Queue
}

// QueueOption configures NewQueue.
type QueueOption interface {
	applyQueue(*queueOptions)
}

type queueOptions struct {
	walPath     string
	walSync     bool
	maxAttempts int
}

type walOption string

func (w walOption) applyQueue(o *queueOptions) { o.walPath = string(w) }

// WithWAL persists the backlog to a write-ahead log at path, making the
// queue itself survive process restarts.
//
// Durability contract: every record is flushed to the operating system
// before Enqueue returns, so an acknowledged enqueue survives a process
// crash. It does not by itself survive a kernel panic or power loss —
// add WithWALSync for that. A crash mid-write tears at most the final
// record; reopening recovers the longest consistent prefix and compacts
// the log.
func WithWAL(path string) QueueOption { return walOption(path) }

type walSyncOption struct{}

func (walSyncOption) applyQueue(o *queueOptions) { o.walSync = true }

// WithWALSync upgrades WithWAL's durability from process-crash to
// power-loss: every enqueue record is fsynced to the storage device
// before Enqueue returns, at the cost of one fsync per message.
func WithWALSync() QueueOption { return walSyncOption{} }

type attemptsOption int

func (a attemptsOption) applyQueue(o *queueOptions) { o.maxAttempts = int(a) }

// WithMaxAttempts bounds crash-triggered resubmissions per message
// (default: unlimited).
func WithMaxAttempts(n int) QueueOption { return attemptsOption(n) }

// NewQueue starts a queue draining into s. Close the queue before the
// sender.
func NewQueue(s *Sender, opts ...QueueOption) (*Queue, error) {
	var o queueOptions
	for _, opt := range opts {
		opt.applyQueue(&o)
	}
	q, err := outbox.New(outbox.Config{
		Send:        s.Send,
		Retryable:   func(err error) bool { return errors.Is(err, ErrCrashed) },
		WALPath:     o.walPath,
		WALSync:     o.walSync,
		MaxAttempts: o.maxAttempts,
	})
	if err != nil {
		return nil, fmt.Errorf("ghm: %w", err)
	}
	return &Queue{q: q}, nil
}

// Enqueue accepts msg for ordered delivery and returns its queue id (also
// usable as an application-level dedup key). With a WAL the message is
// durable before Enqueue returns.
func (q *Queue) Enqueue(msg []byte) (uint64, error) { return q.q.Enqueue(msg) }

// Flush blocks until every enqueued message is confirmed delivered, the
// queue fails fatally, or ctx ends.
func (q *Queue) Flush(ctx context.Context) error { return q.q.Flush(ctx) }

// Stats returns queue counters.
func (q *Queue) Stats() QueueStats {
	st := q.q.Stats()
	return QueueStats{
		Enqueued:  st.Enqueued,
		Sent:      st.Sent,
		Resubmits: st.Resubmits,
		Pending:   st.Pending,
	}
}

// Err returns the queue's sticky fatal error, if any.
func (q *Queue) Err() error { return q.q.Err() }

// Close stops the queue; with a WAL, unconfirmed messages remain durable
// for the next open.
func (q *Queue) Close() error { return q.q.Close() }

// QueueStats counts queue activity.
type QueueStats struct {
	Enqueued  int // messages accepted
	Sent      int // messages confirmed delivered
	Resubmits int // crash-triggered retries
	Pending   int // not yet confirmed
}
