package ghm_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"ghm"
)

func TestQueueDrainsInOrder(t *testing.T) {
	s, r := newPair(t, ghm.PipeFaults{Loss: 0.25, DupProb: 0.2, Seed: 71})
	ctx := testCtx(t)
	q, err := ghm.NewQueue(s)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	const n = 15
	for i := 0; i < n; i++ {
		if _, err := q.Enqueue([]byte(fmt.Sprintf("q-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := r.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("q-%02d", i); string(got) != want {
			t.Fatalf("recv %d = %q, want %q", i, got, want)
		}
	}
	if err := q.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Sent != n || st.Pending != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestQueueResubmitsAcrossCrash(t *testing.T) {
	// A crash-prone sender: we crash the station while a transfer is in
	// flight on a silent link, then heal the link (swap is impossible, so
	// instead: crash during normal operation — some message may be mid
	// flight — and verify everything still arrives exactly in order).
	s, r := newPair(t, ghm.PipeFaults{Loss: 0.3, Seed: 72})
	ctx := testCtx(t)
	q, err := ghm.NewQueue(s)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	const n = 20
	// Consume concurrently: the session stack applies backpressure, so a
	// consumer that waits for Flush would deadlock it once deliveries
	// outrun the buffers. Across crashes delivery is at-least-once;
	// verify order among first occurrences and that nothing is missing.
	type recvResult struct {
		order []string
		err   error
	}
	resc := make(chan recvResult, 1)
	go func() {
		seen := make(map[string]bool)
		var order []string
		for len(seen) < n {
			got, err := r.Recv(ctx)
			if err != nil {
				resc <- recvResult{err: err}
				return
			}
			m := string(got)
			if !seen[m] {
				seen[m] = true
				order = append(order, m)
			}
		}
		resc <- recvResult{order: order}
	}()

	go func() {
		for i := 0; i < 3; i++ {
			time.Sleep(2 * time.Millisecond)
			s.Crash()
		}
	}()
	for i := 0; i < n; i++ {
		if _, err := q.Enqueue([]byte(fmt.Sprintf("c-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	res := <-resc
	if res.err != nil {
		t.Fatal(res.err)
	}
	for i := 1; i < len(res.order); i++ {
		if res.order[i] <= res.order[i-1] {
			t.Fatalf("first-occurrence order broken: %v", res.order)
		}
	}
	if st := q.Stats(); st.Resubmits == 0 {
		t.Log("note: no crash landed mid-transfer this run")
	}
}

func TestQueueWALSurvivesReopen(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "q.wal")

	// First life: a silent link; nothing can be delivered. Enqueue and
	// close — the messages must be in the WAL.
	s1, _ := newPair(t, ghm.PipeFaults{Loss: 1, Seed: 73})
	q1, err := ghm.NewQueue(s1, ghm.WithWAL(wal))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := q1.Enqueue([]byte(fmt.Sprintf("w-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	q1.Close()

	// Second life: a working link drains the recovered backlog.
	s2, r2 := newPair(t, ghm.PipeFaults{Seed: 74})
	q2, err := ghm.NewQueue(s2, ghm.WithWAL(wal))
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	ctx := testCtx(t)
	for i := 0; i < 5; i++ {
		got, err := r2.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("w-%d", i); string(got) != want {
			t.Fatalf("recovered message %d = %q, want %q", i, got, want)
		}
	}
	if err := q2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestQueueMaxAttempts(t *testing.T) {
	// A permanently silent link plus a crash loop: Send keeps failing
	// with ErrCrashed; WithMaxAttempts(2) must surface the failure.
	s, _ := newPair(t, ghm.PipeFaults{Loss: 1, Seed: 75})
	q, err := ghm.NewQueue(s, ghm.WithMaxAttempts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				s.Crash()
			}
		}
	}()
	if _, err := q.Enqueue([]byte("hopeless")); err != nil {
		t.Fatal(err)
	}
	if err := q.Flush(testCtx(t)); err == nil {
		t.Fatal("Flush succeeded on a dead link with bounded attempts")
	}
}
