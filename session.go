package ghm

import (
	"context"
	"fmt"
	"time"

	"ghm/internal/netlink"
	"ghm/internal/session"
	"ghm/internal/supervise"
)

// Health is a Session's coarse health state.
type Health int

// The health states, ordered by severity.
const (
	// HealthHealthy: the station is up and either confirming transfers or
	// idle with nothing pending.
	HealthHealthy Health = Health(supervise.Healthy)
	// HealthDegraded: a restart is in flight — the progress watchdog
	// fired or a station failed to start.
	HealthDegraded Health = Health(supervise.Degraded)
	// HealthPartitioned: consecutive rebuilds changed nothing — fresh
	// stations wedge like their predecessors, pointing at the link.
	HealthPartitioned Health = Health(supervise.Partitioned)
	// HealthDown: the restart circuit breaker is open; the session has
	// stopped rebuilding until the cooldown admits a probe.
	HealthDown Health = Health(supervise.Down)
)

// String implements fmt.Stringer.
func (h Health) String() string { return supervise.Health(h).String() }

// HealthTransition is one health-state change, delivered to Subscribe
// channels.
type HealthTransition struct {
	From, To Health
	// Cause is a short human-readable reason ("watchdog: no progress",
	// "breaker open", "progress", ...).
	Cause string
	At    time.Time
}

// SessionConfig parameterizes NewSession. Dial is required; zero values
// elsewhere mean sensible defaults.
type SessionConfig struct {
	// Dial opens the transport for one station incarnation. It is called
	// on every (re)start. Share wraps one long-lived PacketConn into a
	// redialable source with exactly this signature.
	Dial func() (PacketConn, error)
	// Options configure each station incarnation (WithEpsilon, WithSeed,
	// WithTap, ...), exactly as for NewSender.
	Options []Option

	// WAL persists the backlog to a write-ahead log at the given path, so
	// the session's queue survives process restarts (see WithWAL for the
	// durability contract). WALSync upgrades it to fsync-per-record.
	WAL     string
	WALSync bool
	// MaxAttempts bounds resubmissions per message (0 = unlimited).
	MaxAttempts int

	// WatchdogWindow is how long transfers may sit pending with no OK
	// committing before the station is declared wedged and rebuilt
	// (default 2s). WatchdogInterval is the poll period (default
	// WatchdogWindow/8).
	WatchdogWindow   time.Duration
	WatchdogInterval time.Duration

	// RestartBackoff and RestartBackoffMax bound the jittered exponential
	// delay between consecutive rebuilds (defaults 50ms and 5s).
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration

	// BreakerThreshold fruitless restarts within BreakerWindow open the
	// restart circuit breaker; it stays open for BreakerCooldown, then
	// admits a single probe station whose progress closes it (defaults
	// 5, 30s, 10s; a negative threshold disables the breaker).
	BreakerThreshold int
	BreakerWindow    time.Duration
	BreakerCooldown  time.Duration
}

// SessionStats snapshots a Session's counters.
type SessionStats struct {
	Enqueued      int    // payloads accepted
	Sent          int    // payloads confirmed delivered
	Resubmits     int    // crash- or restart-triggered resubmissions
	Pending       int    // accepted but not yet confirmed
	Restarts      int64  // stations rebuilt after the first
	StartFailures int64  // Dial or station-start failures
	Wedges        int64  // progress-watchdog firings
	BreakerOpens  int64  // circuit-breaker opens
	Generation    uint64 // station incarnations built so far
	Health        Health // current health state
}

// Session is a supervised, self-healing sending endpoint: a transmitting
// station under a progress watchdog, fronted by the buffering queue of
// the paper's Axiom 1. Enqueue payloads at will; the session transfers
// them in order, and when the station wedges — a half-dead socket, a
// long partition, a crash — it is torn down and rebuilt with fresh
// randomness, the unconfirmed backlog resubmitted automatically, under
// exponential backoff and a restart circuit breaker.
//
// Delivery is exactly-once while no station crashes and at-least-once
// across crashes and restarts: a wiped in-flight payload may or may not
// have reached the receiver before the wipe, so the session resubmits
// it. Deduplicate by an application-level id (Enqueue's return value
// works) when that matters.
//
// Create with NewSession; always Close.
type Session struct {
	s *session.Session
}

// NewSession builds and starts a supervised session.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("ghm: session: Dial is required")
	}
	o := applyOptions(cfg.Options)
	if k := o.windowDepth(); k < 1 || k > MaxWindow {
		return nil, fmt.Errorf("ghm: session: window depth must be in [1, %d], got %d", MaxWindow, k)
	}
	dial := func() (netlink.PacketConn, error) { return cfg.Dial() }
	var seed int64
	if o.hasSeed {
		// Derive the supervisor's jitter from the station seed so a seeded
		// session is deterministic end to end.
		seed = o.seed + 1
	}
	s, err := session.New(session.Config{
		Dial:              dial,
		Params:            o.params(),
		Tap:               tapToTrace(o.tap),
		WALPath:           cfg.WAL,
		WALSync:           cfg.WALSync,
		MaxAttempts:       cfg.MaxAttempts,
		Window:            o.windowDepth(),
		WatchdogWindow:    cfg.WatchdogWindow,
		WatchdogInterval:  cfg.WatchdogInterval,
		RestartBackoff:    cfg.RestartBackoff,
		RestartBackoffMax: cfg.RestartBackoffMax,
		BreakerThreshold:  cfg.BreakerThreshold,
		BreakerWindow:     cfg.BreakerWindow,
		BreakerCooldown:   cfg.BreakerCooldown,
		Seed:              seed,
	})
	if err != nil {
		return nil, fmt.Errorf("ghm: %w", err)
	}
	return &Session{s: s}, nil
}

// Enqueue accepts a payload for supervised in-order delivery and returns
// its queue id (also usable as an application-level dedup key). With a
// WAL the payload is durable before Enqueue returns.
func (s *Session) Enqueue(msg []byte) (uint64, error) { return s.s.Enqueue(msg) }

// Flush blocks until every enqueued payload is confirmed delivered, the
// session fails fatally, or ctx ends. Station restarts are not failures:
// Flush rides through them.
func (s *Session) Flush(ctx context.Context) error { return s.s.Flush(ctx) }

// Err returns the session's sticky fatal error, if any. Watchdog
// restarts and breaker openings are not fatal; running out of
// MaxAttempts or a WAL write failure is.
func (s *Session) Err() error { return s.s.Err() }

// Health returns the current health state.
func (s *Session) Health() Health { return Health(s.s.Health()) }

// Subscribe returns a channel of health transitions. The channel is
// buffered; if the subscriber lags, old transitions are dropped rather
// than blocking the supervisor. Close closes the channel.
func (s *Session) Subscribe() <-chan HealthTransition {
	in := s.s.Subscribe()
	out := make(chan HealthTransition, cap(in))
	go func() {
		defer close(out)
		for tr := range in {
			// Non-blocking, like the internal fanout: a subscriber that
			// stopped draining must not pin this goroutine past Close.
			select {
			case out <- HealthTransition{
				From:  Health(tr.From),
				To:    Health(tr.To),
				Cause: tr.Cause,
				At:    tr.At,
			}:
			default:
			}
		}
	}()
	return out
}

// Stats snapshots the session's counters.
func (s *Session) Stats() SessionStats {
	st := s.s.Stats()
	return SessionStats{
		Enqueued:      st.Enqueued,
		Sent:          st.Sent,
		Resubmits:     st.Resubmits,
		Pending:       st.Pending,
		Restarts:      st.Restarts,
		StartFailures: st.StartFailures,
		Wedges:        st.Wedges,
		BreakerOpens:  st.BreakerOpens,
		Generation:    st.Generation,
		Health:        Health(st.Health),
	}
}

// Crash erases the live station's memory (crash^T) without tearing it
// down, for fault-injection tests and demos; the session resubmits
// whatever the wipe interrupted.
func (s *Session) Crash() { s.s.Crash() }

// Close stops the session: the queue, the supervisor, the station, the
// subscription channels. With a WAL, the unconfirmed backlog stays
// durable for the next session on the same path.
func (s *Session) Close() error { return s.s.Close() }

// SharedLink adapts one long-lived PacketConn into the redialable
// transport a Session needs: every Dial detaches the previous station's
// view and attaches a fresh one, without closing the underlying conn.
// Use it when the transport is expensive or impossible to re-open per
// restart (a bound UDP socket, one half of a Pipe).
type SharedLink struct {
	sc *netlink.SharedConn
}

// Share wraps conn. Closing the SharedLink closes conn; closing the
// views handed out by Dial does not.
func Share(conn PacketConn) *SharedLink {
	return &SharedLink{sc: netlink.NewSharedConn(conn)}
}

// Dial attaches a fresh view; it has the signature SessionConfig.Dial
// expects.
func (l *SharedLink) Dial() (PacketConn, error) { return l.sc.Attach() }

// Wedge half-kills the current view for fault injection: its sends
// vanish silently and it stops receiving, without surfacing any error —
// the failure mode only a progress watchdog can detect. The next Dial
// attaches a working view again.
func (l *SharedLink) Wedge() { l.sc.WedgeCurrent() }

// Close releases the underlying conn and unblocks every view.
func (l *SharedLink) Close() error { return l.sc.Close() }
