package ghm_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ghm"
	"ghm/internal/testutil"
)

// sessionRig wires a supervised Session to a plain Receiver over a
// shared in-memory pipe.
type sessionRig struct {
	link  *ghm.SharedLink
	r     *ghm.Receiver
	s     *ghm.Session
	drain sync.WaitGroup

	mu  sync.Mutex
	got []string
}

func (g *sessionRig) delivered() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.got...)
}

func newSessionRig(t *testing.T, mut func(*ghm.SessionConfig)) *sessionRig {
	t.Helper()
	a, b := ghm.Pipe(ghm.PipeFaults{Seed: 1})
	g := &sessionRig{link: ghm.Share(a)}

	var err error
	g.r, err = ghm.NewReceiver(b, ghm.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	g.drain.Add(1)
	go func() {
		defer g.drain.Done()
		for {
			msg, err := g.r.Recv(testCtx(t))
			if err != nil {
				return
			}
			g.mu.Lock()
			g.got = append(g.got, string(msg))
			g.mu.Unlock()
		}
	}()

	cfg := ghm.SessionConfig{
		Dial:              g.link.Dial,
		Options:           []ghm.Option{ghm.WithSeed(3)},
		WatchdogWindow:    150 * time.Millisecond,
		WatchdogInterval:  10 * time.Millisecond,
		RestartBackoff:    5 * time.Millisecond,
		RestartBackoffMax: 40 * time.Millisecond,
		BreakerThreshold:  50,
		BreakerWindow:     10 * time.Second,
		BreakerCooldown:   100 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	g.s, err = ghm.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		g.s.Close()
		g.r.Close()
		g.link.Close()
		g.drain.Wait()
	})
	return g
}

func TestSessionDelivers(t *testing.T) {
	g := newSessionRig(t, nil)
	for i := 0; i < 5; i++ {
		if _, err := g.s.Enqueue([]byte(fmt.Sprintf("s-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.s.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	st := g.s.Stats()
	if st.Sent != 5 || st.Pending != 0 {
		t.Fatalf("stats: %+v", st)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(g.delivered()) < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := g.delivered(); len(d) != 5 || d[0] != "s-0" || d[4] != "s-4" {
		t.Fatalf("delivered %v", d)
	}
	if h := g.s.Health(); h != ghm.HealthHealthy {
		t.Fatalf("health %v", h)
	}
}

func TestSessionRecoversFromCrashes(t *testing.T) {
	g := newSessionRig(t, nil)
	for i := 0; i < 10; i++ {
		if _, err := g.s.Enqueue([]byte(fmt.Sprintf("c-%d", i))); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			g.s.Crash()
		}
	}
	if err := g.s.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if st := g.s.Stats(); st.Sent != 10 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSessionHealsWedgedLink(t *testing.T) {
	g := newSessionRig(t, nil)

	// Confirm one message so the first incarnation is demonstrably live.
	if _, err := g.s.Enqueue([]byte("warmup")); err != nil {
		t.Fatal(err)
	}
	if err := g.s.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}

	sub := g.s.Subscribe()
	g.link.Wedge() // half-dead socket: sends vanish, no error surfaces

	if _, err := g.s.Enqueue([]byte("stuck-then-saved")); err != nil {
		t.Fatal(err)
	}
	if err := g.s.Flush(testCtx(t)); err != nil {
		t.Fatalf("flush across wedge: %v (stats %+v)", err, g.s.Stats())
	}

	st := g.s.Stats()
	if st.Wedges < 1 || st.Restarts < 1 || st.Sent != 2 {
		t.Fatalf("watchdog did not heal: %+v", st)
	}
	// The health machine must have left Healthy and come back.
	var sawDegraded, sawHealthy bool
	for !(sawDegraded && sawHealthy) {
		select {
		case tr := <-sub:
			if tr.To == ghm.HealthDegraded || tr.To == ghm.HealthPartitioned {
				sawDegraded = true
			}
			if sawDegraded && tr.To == ghm.HealthHealthy {
				sawHealthy = true
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("transitions incomplete: degraded=%v healthy=%v", sawDegraded, sawHealthy)
		}
	}
}

func TestSessionRequiresDial(t *testing.T) {
	if _, err := ghm.NewSession(ghm.SessionConfig{}); err == nil {
		t.Fatal("missing Dial accepted")
	}
}

func TestHealthStrings(t *testing.T) {
	for h, want := range map[ghm.Health]string{
		ghm.HealthHealthy:     "healthy",
		ghm.HealthDegraded:    "degraded",
		ghm.HealthPartitioned: "partitioned",
		ghm.HealthDown:        "down",
	} {
		if got := h.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(h), got, want)
		}
	}
}

// TestSessionSubscribeAbandonedDoesNotLeak is the late-unsubscribe leak
// regression: a subscriber that stops draining while transitions keep
// flowing must not pin the wrapper's forwarding goroutine past Close.
// Before the fix the wrapper forwarded with a blocking send, so once the
// abandoned channel's buffer filled the goroutine hung forever.
func TestSessionSubscribeAbandonedDoesNotLeak(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	g := newSessionRig(t, func(c *ghm.SessionConfig) {
		c.WatchdogWindow = 50 * time.Millisecond
		c.WatchdogInterval = 5 * time.Millisecond
	})
	// Warm up so the first incarnation has demonstrably attached its link
	// view — Wedge targets the current view.
	if _, err := g.s.Enqueue([]byte("warmup")); err != nil {
		t.Fatal(err)
	}
	if err := g.s.Flush(testCtx(t)); err != nil {
		t.Fatal(err)
	}

	abandoned := g.s.Subscribe()
	_ = abandoned // registered, never drained

	// Drive well over a buffer's worth of transitions: every wedge/heal
	// cycle degrades and recovers the session's health. The flush at the
	// end of each cycle proves the successor incarnation attached a live
	// view, which is what the next Wedge targets.
	for i := 0; i < 12; i++ {
		before := g.s.Stats().Wedges
		g.link.Wedge()
		if _, err := g.s.Enqueue([]byte(fmt.Sprintf("wedge-%02d", i))); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for g.s.Stats().Wedges == before {
			if time.Now().After(deadline) {
				t.Fatalf("watchdog never fired on cycle %d (stats %+v)", i, g.s.Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err := g.s.Flush(testCtx(t)); err != nil {
			t.Fatalf("flush cycle %d: %v (stats %+v)", i, err, g.s.Stats())
		}
	}
	g.s.Close() // must close the abandoned channel and reap its forwarder
	select {
	case _, ok := <-abandoned:
		if ok {
			return // buffered transition; fine — channel closes behind it
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned subscription never closed")
	}
}
