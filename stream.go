package ghm

import (
	"context"
	"errors"
	"fmt"
	"io"

	"ghm/internal/netlink"
)

// Seal wraps a PacketConn with authenticated encryption (AES-GCM with a
// fresh random nonce per packet, key of 16, 24 or 32 bytes; both endpoints
// need the same key).
//
// The paper's guarantees against a malicious scheduler assume the
// adversary cannot read packet contents and cannot tell two encryptions
// of the same packet apart (Section 2.5); Seal provides exactly that, and
// its authentication tag additionally turns any tampering or forgery into
// packet loss, which the protocol tolerates by design.
func Seal(conn PacketConn, key []byte) (PacketConn, error) {
	sealed, err := netlink.Seal(conn, key)
	if err != nil {
		return nil, fmt.Errorf("ghm: %w", err)
	}
	return sealed, nil
}

// DefaultChunkSize is the stream chunk size when StreamWriter.ChunkSize is
// left zero.
const DefaultChunkSize = 32 * 1024

// errStreamClosed reports writes to a closed StreamWriter.
var errStreamClosed = errors.New("ghm: stream closed")

// Stream framing: each protocol message is a one-byte kind followed by
// payload bytes.
const (
	streamData byte = 1
	streamEOF  byte = 2
)

// StreamWriter adapts a Sender into an io.WriteCloser: an arbitrary byte
// stream is chunked into protocol messages, each confirmed end to end
// before the next is sent. Close flushes buffered bytes and sends an
// end-of-stream marker that surfaces as io.EOF at the reading side.
//
// A StreamWriter is for a single goroutine.
type StreamWriter struct {
	// ChunkSize caps the bytes per protocol message; set it before the
	// first Write (0 means DefaultChunkSize).
	ChunkSize int

	ctx    context.Context
	s      *Sender
	buf    []byte
	closed bool
}

var _ io.WriteCloser = (*StreamWriter)(nil)

// NewStreamWriter returns a writer sending through s. The context bounds
// every underlying Send.
func NewStreamWriter(ctx context.Context, s *Sender) *StreamWriter {
	return &StreamWriter{ctx: ctx, s: s}
}

// Write implements io.Writer. It blocks while full chunks are confirmed.
func (w *StreamWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errStreamClosed
	}
	w.buf = append(w.buf, p...)
	chunk := w.chunk()
	for len(w.buf) >= chunk {
		if err := w.sendChunk(w.buf[:chunk]); err != nil {
			return 0, err
		}
		w.buf = w.buf[chunk:]
	}
	return len(p), nil
}

// Flush sends any buffered bytes immediately.
func (w *StreamWriter) Flush() error {
	if w.closed {
		return errStreamClosed
	}
	if len(w.buf) == 0 {
		return nil
	}
	if err := w.sendChunk(w.buf); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

// Close flushes and sends the end-of-stream marker. It does not close the
// underlying Sender (streams can be followed by further messages).
func (w *StreamWriter) Close() error {
	if w.closed {
		return nil
	}
	if err := w.Flush(); err != nil {
		return err
	}
	w.closed = true
	return w.s.Send(w.ctx, []byte{streamEOF})
}

func (w *StreamWriter) chunk() int {
	if w.ChunkSize > 0 {
		return w.ChunkSize
	}
	return DefaultChunkSize
}

func (w *StreamWriter) sendChunk(chunk []byte) error {
	msg := make([]byte, 1+len(chunk))
	msg[0] = streamData
	copy(msg[1:], chunk)
	return w.s.Send(w.ctx, msg)
}

// StreamReader adapts a Receiver into an io.Reader, the counterpart of
// StreamWriter. It returns io.EOF after the writer's Close marker.
//
// A StreamReader is for a single goroutine.
type StreamReader struct {
	ctx context.Context
	r   *Receiver
	cur []byte
	eof bool
}

var _ io.Reader = (*StreamReader)(nil)

// NewStreamReader returns a reader receiving through r. The context bounds
// every underlying Recv.
func NewStreamReader(ctx context.Context, r *Receiver) *StreamReader {
	return &StreamReader{ctx: ctx, r: r}
}

// Read implements io.Reader.
func (r *StreamReader) Read(p []byte) (int, error) {
	for len(r.cur) == 0 {
		if r.eof {
			return 0, io.EOF
		}
		msg, err := r.r.Recv(r.ctx)
		if err != nil {
			return 0, err
		}
		if len(msg) == 0 {
			return 0, fmt.Errorf("ghm: stream: empty frame")
		}
		switch msg[0] {
		case streamData:
			r.cur = msg[1:]
		case streamEOF:
			r.eof = true
			return 0, io.EOF
		default:
			return 0, fmt.Errorf("ghm: stream: unknown frame kind %d", msg[0])
		}
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}
