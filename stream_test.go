package ghm_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"ghm"
)

func streamPair(t *testing.T, f ghm.PipeFaults) (*ghm.Sender, *ghm.Receiver) {
	t.Helper()
	return newPair(t, f)
}

func TestStreamRoundTripSmall(t *testing.T) {
	s, r := streamPair(t, ghm.PipeFaults{Seed: 21})
	ctx := testCtx(t)

	w := ghm.NewStreamWriter(ctx, s)
	rd := ghm.NewStreamReader(ctx, r)

	go func() {
		io.WriteString(w, "hello, ")
		io.WriteString(w, "stream world")
		w.Close()
	}()
	got, err := io.ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello, stream world" {
		t.Fatalf("ReadAll = %q", got)
	}
	// Reads after EOF keep returning EOF.
	if n, err := rd.Read(make([]byte, 4)); n != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("post-EOF Read = %d, %v", n, err)
	}
}

func TestStreamLargePayloadOverFaultyLink(t *testing.T) {
	s, r := streamPair(t, ghm.PipeFaults{Loss: 0.25, DupProb: 0.25, ReorderProb: 0.25, Seed: 22})
	ctx := testCtx(t)

	payload := make([]byte, 64*1024)
	rand.New(rand.NewSource(23)).Read(payload)
	wantSum := sha256.Sum256(payload)

	w := ghm.NewStreamWriter(ctx, s)
	w.ChunkSize = 1024 // many chunks, each confirmed across the faults
	rd := ghm.NewStreamReader(ctx, r)

	errc := make(chan error, 1)
	go func() {
		if _, err := w.Write(payload); err != nil {
			errc <- err
			return
		}
		errc <- w.Close()
	}()
	got, err := io.ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if gotSum := sha256.Sum256(got); gotSum != wantSum {
		t.Fatalf("stream corrupted: %d bytes in, %d out", len(payload), len(got))
	}
}

func TestStreamEmptyClose(t *testing.T) {
	s, r := streamPair(t, ghm.PipeFaults{Seed: 24})
	ctx := testCtx(t)
	w := ghm.NewStreamWriter(ctx, s)
	go w.Close()
	got, err := io.ReadAll(ghm.NewStreamReader(ctx, r))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream = %q, %v", got, err)
	}
}

func TestStreamWriteAfterClose(t *testing.T) {
	s, r := streamPair(t, ghm.PipeFaults{Seed: 25})
	ctx := testCtx(t)
	w := ghm.NewStreamWriter(ctx, s)
	done := make(chan struct{})
	go func() {
		io.ReadAll(ghm.NewStreamReader(ctx, r))
		close(done)
	}()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := w.Write([]byte("late")); err == nil {
		t.Fatal("Write after Close succeeded")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("Flush after Close succeeded")
	}
	<-done
}

func TestStreamFlush(t *testing.T) {
	s, r := streamPair(t, ghm.PipeFaults{Seed: 26})
	ctx := testCtx(t)
	w := ghm.NewStreamWriter(ctx, s)
	rd := ghm.NewStreamReader(ctx, r)

	go func() {
		io.WriteString(w, "partial")
		w.Flush() // below ChunkSize, but must go out now
	}()
	buf := make([]byte, 16)
	n, err := rd.Read(buf)
	if err != nil || string(buf[:n]) != "partial" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
}

func TestStreamThenMessages(t *testing.T) {
	// A closed stream does not close the session: plain messages still
	// work afterwards (framed reads just stop at the marker).
	s, r := streamPair(t, ghm.PipeFaults{Seed: 27})
	ctx := testCtx(t)
	w := ghm.NewStreamWriter(ctx, s)
	rd := ghm.NewStreamReader(ctx, r)

	go func() {
		io.WriteString(w, "streamed")
		w.Close()
		s.Send(ctx, []byte("plain message"))
	}()
	got, err := io.ReadAll(rd)
	if err != nil || string(got) != "streamed" {
		t.Fatalf("stream part = %q, %v", got, err)
	}
	msg, err := r.Recv(ctx)
	if err != nil || string(msg) != "plain message" {
		t.Fatalf("plain part = %q, %v", msg, err)
	}
}

func TestSealedSessionPublicAPI(t *testing.T) {
	key := bytes.Repeat([]byte{0xAB}, 32)
	left, right := ghm.Pipe(ghm.PipeFaults{Loss: 0.2, Seed: 28})
	sealedLeft, err := ghm.Seal(left, key)
	if err != nil {
		t.Fatal(err)
	}
	sealedRight, err := ghm.Seal(right, key)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ghm.NewSender(sealedLeft)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := ghm.NewReceiver(sealedRight, ghm.WithRetryInterval(300*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx := testCtx(t)
	if err := s.Send(ctx, []byte("sealed hello")); err != nil {
		t.Fatal(err)
	}
	got, err := r.Recv(ctx)
	if err != nil || string(got) != "sealed hello" {
		t.Fatalf("Recv = %q, %v", got, err)
	}
}

func TestSealBadKeyPublicAPI(t *testing.T) {
	left, _ := ghm.Pipe(ghm.PipeFaults{Seed: 29})
	defer left.Close()
	if _, err := ghm.Seal(left, []byte("short")); err == nil {
		t.Fatal("Seal accepted a bad key")
	}
}

func TestStreamContextCancel(t *testing.T) {
	// A reader blocked on a silent link must honour its context.
	_, r := streamPair(t, ghm.PipeFaults{Loss: 1, Seed: 30})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	rd := ghm.NewStreamReader(ctx, r)
	if _, err := rd.Read(make([]byte, 1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Read = %v, want deadline exceeded", err)
	}
}
