package ghm

import (
	"ghm/internal/trace"
)

// EventKind classifies a station lifecycle event observed via WithTap.
type EventKind int

// The externally visible station actions a tap observes. They mirror the
// actions of the paper's I/O-automata model: send_msg, OK, receive_msg
// and the two crash actions.
const (
	// EventSendMsg fires when a Sender accepts a message from the caller.
	EventSendMsg EventKind = iota + 1
	// EventOK fires when the Sender's protocol confirms delivery.
	EventOK
	// EventReceiveMsg fires when a Receiver commits a delivery to the
	// higher layer.
	EventReceiveMsg
	// EventCrashSender fires when the transmitting station's memory is
	// erased (Crash, or a cancelled Send).
	EventCrashSender
	// EventCrashReceiver fires when the receiving station's memory is
	// erased.
	EventCrashReceiver
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventSendMsg:
		return "send_msg"
	case EventOK:
		return "OK"
	case EventReceiveMsg:
		return "receive_msg"
	case EventCrashSender:
		return "crash^T"
	case EventCrashReceiver:
		return "crash^R"
	default:
		return "Event(?)"
	}
}

// Event is one station lifecycle action, delivered to a WithTap callback
// at the moment the station commits it.
type Event struct {
	Kind EventKind
	// Msg is the message payload for EventSendMsg and EventReceiveMsg.
	Msg []byte
	// Slot is the window slot that performed the action on a windowed
	// station (WithWindow); single-slot stations report 0.
	Slot int
}

// tapToTrace adapts a public tap callback to the internal trace schema
// shared with the model layer's checkers.
func tapToTrace(fn func(Event)) func(trace.Event) {
	if fn == nil {
		return nil
	}
	return func(e trace.Event) {
		var k EventKind
		switch e.Kind {
		case trace.KindSendMsg:
			k = EventSendMsg
		case trace.KindOK:
			k = EventOK
		case trace.KindReceiveMsg:
			k = EventReceiveMsg
		case trace.KindCrashT:
			k = EventCrashSender
		case trace.KindCrashR:
			k = EventCrashReceiver
		default:
			return
		}
		fn(Event{Kind: k, Msg: []byte(e.Msg), Slot: e.Slot})
	}
}
